type t = {
  topo : Topology.t;
  fmax : int;
  leaf_used : int array;
  pod_used : int array;
}

let create topo ~fmax =
  if fmax < 0 then invalid_arg "Srule_state.create: fmax must be non-negative";
  {
    topo;
    fmax;
    leaf_used = Array.make (Topology.num_leaves topo) 0;
    pod_used = Array.make topo.Topology.pods 0;
  }

let fmax t = t.fmax
let leaf_has_space t l = t.leaf_used.(l) < t.fmax
let pod_has_space t p = t.pod_used.(p) < t.fmax

let reserve_leaf t l =
  if not (leaf_has_space t l) then failwith "Srule_state.reserve_leaf: full";
  t.leaf_used.(l) <- t.leaf_used.(l) + 1

let reserve_pod t p =
  if not (pod_has_space t p) then failwith "Srule_state.reserve_pod: full";
  t.pod_used.(p) <- t.pod_used.(p) + 1

let release_leaf t l =
  if t.leaf_used.(l) <= 0 then failwith "Srule_state.release_leaf: underflow";
  t.leaf_used.(l) <- t.leaf_used.(l) - 1

let release_pod t p =
  if t.pod_used.(p) <= 0 then failwith "Srule_state.release_pod: underflow";
  t.pod_used.(p) <- t.pod_used.(p) - 1

let leaf_used t l = t.leaf_used.(l)
let pod_used t p = t.pod_used.(p)
let leaf_occupancy t = Array.copy t.leaf_used

let spine_occupancy t =
  Array.init (Topology.num_spines t.topo) (fun s ->
      t.pod_used.(s / t.topo.Topology.spines_per_pod))

let total_srules t =
  Array.fold_left ( + ) 0 t.leaf_used
  + (Array.fold_left ( + ) 0 t.pod_used * t.topo.Topology.spines_per_pod)
