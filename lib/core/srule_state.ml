module Obs = Elmo_obs.Obs

type site = Leaf of int | Pod of int

exception Full of site
exception Underflow of site

let () =
  Printexc.register_printer (function
    | Full (Leaf l) -> Some (Printf.sprintf "Srule_state.Full (Leaf %d)" l)
    | Full (Pod p) -> Some (Printf.sprintf "Srule_state.Full (Pod %d)" p)
    | Underflow (Leaf l) -> Some (Printf.sprintf "Srule_state.Underflow (Leaf %d)" l)
    | Underflow (Pod p) -> Some (Printf.sprintf "Srule_state.Underflow (Pod %d)" p)
    | _ -> None)

type t = {
  topo : Topology.t;
  fmax : int;
  leaf_used : int array;
  pod_used : int array;
}

let create topo ~fmax =
  if fmax < 0 then invalid_arg "Srule_state.create: fmax must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  {
    topo;
    fmax;
    leaf_used = Array.make (Topology.num_leaves topo) 0;
    pod_used = Array.make topo.Topology.pods 0;
  }

let copy t =
  {
    t with
    leaf_used = Array.copy t.leaf_used;
    pod_used = Array.copy t.pod_used;
  }

let fmax t = t.fmax
let leaf_has_space t l = t.leaf_used.(l) < t.fmax
let pod_has_space t p = t.pod_used.(p) < t.fmax

let reserve_leaf t l =
  if not (leaf_has_space t l) then raise (Full (Leaf l));
  t.leaf_used.(l) <- t.leaf_used.(l) + 1

let reserve_pod t p =
  if not (pod_has_space t p) then raise (Full (Pod p));
  t.pod_used.(p) <- t.pod_used.(p) + 1

let release_leaf t l =
  if t.leaf_used.(l) <= 0 then raise (Underflow (Leaf l));
  t.leaf_used.(l) <- t.leaf_used.(l) - 1

let release_pod t p =
  if t.pod_used.(p) <= 0 then raise (Underflow (Pod p));
  t.pod_used.(p) <- t.pod_used.(p) - 1

let leaf_used t l = t.leaf_used.(l)
let pod_used t p = t.pod_used.(p)
let leaf_occupancy t = Array.copy t.leaf_used

let spine_occupancy t =
  Array.init (Topology.num_spines t.topo) (fun s ->
      t.pod_used.(s / t.topo.Topology.spines_per_pod))

let total_srules t =
  Array.fold_left ( + ) 0 t.leaf_used
  + (Array.fold_left ( + ) 0 t.pod_used * t.topo.Topology.spines_per_pod)

let check t =
  let ok used = Array.for_all (fun u -> 0 <= u && u <= t.fmax) used in
  ok t.leaf_used && ok t.pod_used

(* {1 Snapshot / reserve / commit}

   A transaction probes capacity against a frozen snapshot plus its own
   reservations, recording every probe's answer. Commit replays the probe
   log against the live ledger: if every answer still holds, the encode
   that drove the probes would have made the identical decisions against
   the live ledger, so its reservations are applied wholesale; the first
   diverging answer aborts the commit with the offending site and leaves
   the ledger untouched. *)

type snapshot = {
  snap_fmax : int;
  snap_leaf : int array;
  snap_pod : int array;
}

let snapshot t =
  {
    snap_fmax = t.fmax;
    snap_leaf = Array.copy t.leaf_used;
    snap_pod = Array.copy t.pod_used;
  }

type probe = { p_site : site; granted : bool }

(* Primitive Hashtbl key for a [site]: leaves on even slots, pods on odd.
   Keying the table by the variant itself would lean on polymorphic
   hashing/equality of an abstract type. *)
let site_key = function Leaf l -> 2 * l | Pod p -> (2 * p) + 1

type txn = {
  snap : snapshot;
  (* per-site reservations made by this txn; sparse — a group touches few
     switches; keyed by [site_key] *)
  extra : (int, int) Hashtbl.t;
  mutable log : probe list;  (* newest first *)
  mutable closed : bool;
}

let txn snap = { snap; extra = Hashtbl.create 8; log = []; closed = false }

let extra_of txn site =
  Option.value ~default:0 (Hashtbl.find_opt txn.extra (site_key site))

let txn_probe txn site base_used =
  if txn.closed then invalid_arg "Srule_state: transaction already committed"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  let extra = extra_of txn site in
  let granted = base_used + extra < txn.snap.snap_fmax in
  txn.log <- { p_site = site; granted } :: txn.log;
  if granted then Hashtbl.replace txn.extra (site_key site) (extra + 1);
  granted

let txn_reserve_leaf txn l = txn_probe txn (Leaf l) txn.snap.snap_leaf.(l)
let txn_reserve_pod txn p = txn_probe txn (Pod p) txn.snap.snap_pod.(p)

let txn_reserved txn =
  Hashtbl.fold (fun _ n acc -> acc + n) txn.extra 0

(* Every site the transaction has probed (granted or not), deduplicated.
   This is exactly the set of live-ledger cells {!commit} will read — and a
   subset of them the cells it will write — so a sharded committer can check
   that a group's transaction stays inside the pods its tree claims. *)
let txn_sites txn =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc { p_site; granted = _ } ->
      let k = site_key p_site in
      if Hashtbl.mem seen k then acc
      else begin
        Hashtbl.add seen k ();
        p_site :: acc
      end)
    [] txn.log

let commit t txn =
  if txn.closed then invalid_arg "Srule_state.commit: transaction already committed"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Obs.with_span "srule.commit" @@ fun () ->
  Obs.incr "srule.commits";
  Obs.observe "srule.txn_probes" (float_of_int (List.length txn.log));
  let live = function Leaf l -> t.leaf_used.(l) | Pod p -> t.pod_used.(p) in
  let extra = Hashtbl.create 8 in
  let rec replay = function
    | [] -> Ok ()
    | { p_site; granted } :: rest ->
        let key = site_key p_site in
        let e =
          match Hashtbl.find_opt extra key with Some (n, _) -> n | None -> 0
        in
        let granted' = live p_site + e < t.fmax in
        if granted' <> granted then Error p_site
        else begin
          if granted then Hashtbl.replace extra key (e + 1, p_site);
          replay rest
        end
  in
  let result = replay (List.rev txn.log) in
  (match result with
  | Ok () ->
      Hashtbl.iter
        (fun _ (n, site) ->
          match site with
          | Leaf l -> t.leaf_used.(l) <- t.leaf_used.(l) + n
          | Pod p -> t.pod_used.(p) <- t.pod_used.(p) + n)
        extra
  | Error _ -> Obs.incr "srule.commit_conflicts");
  txn.closed <- true;
  result
