module Obs = Elmo_obs.Obs

type site = Leaf of int | Pod of int

exception Full of site
exception Underflow of site

let () =
  Printexc.register_printer (function
    | Full (Leaf l) -> Some (Printf.sprintf "Srule_state.Full (Leaf %d)" l)
    | Full (Pod p) -> Some (Printf.sprintf "Srule_state.Full (Pod %d)" p)
    | Underflow (Leaf l) -> Some (Printf.sprintf "Srule_state.Underflow (Leaf %d)" l)
    | Underflow (Pod p) -> Some (Printf.sprintf "Srule_state.Underflow (Pod %d)" p)
    | _ -> None)

type t = {
  topo : Topology.t;
  fmax : int;
  leaf_used : int array;
  pod_used : int array;
}

let create topo ~fmax =
  if fmax < 0 then invalid_arg "Srule_state.create: fmax must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  {
    topo;
    fmax;
    leaf_used = Array.make (Topology.num_leaves topo) 0;
    pod_used = Array.make topo.Topology.pods 0;
  }

let copy t =
  {
    t with
    leaf_used = Array.copy t.leaf_used;
    pod_used = Array.copy t.pod_used;
  }

let fmax t = t.fmax
let leaf_has_space t l = t.leaf_used.(l) < t.fmax
let pod_has_space t p = t.pod_used.(p) < t.fmax

let reserve_leaf t l =
  if not (leaf_has_space t l) then raise (Full (Leaf l));
  t.leaf_used.(l) <- t.leaf_used.(l) + 1

let reserve_pod t p =
  if not (pod_has_space t p) then raise (Full (Pod p));
  t.pod_used.(p) <- t.pod_used.(p) + 1

let release_leaf t l =
  if t.leaf_used.(l) <= 0 then raise (Underflow (Leaf l));
  t.leaf_used.(l) <- t.leaf_used.(l) - 1

let release_pod t p =
  if t.pod_used.(p) <= 0 then raise (Underflow (Pod p));
  t.pod_used.(p) <- t.pod_used.(p) - 1

let leaf_used t l = t.leaf_used.(l)
let pod_used t p = t.pod_used.(p)
let leaf_occupancy t = Array.copy t.leaf_used

let spine_occupancy t =
  Array.init (Topology.num_spines t.topo) (fun s ->
      t.pod_used.(s / t.topo.Topology.spines_per_pod))

let total_srules t =
  Array.fold_left ( + ) 0 t.leaf_used
  + (Array.fold_left ( + ) 0 t.pod_used * t.topo.Topology.spines_per_pod)

let check t =
  let ok used = Array.for_all (fun u -> 0 <= u && u <= t.fmax) used in
  ok t.leaf_used && ok t.pod_used

(* Durable wire codec: the occupancy arrays are dimensioned by the
   topology, so [read] takes the already-decoded topology and validates the
   persisted array lengths against it — a short corrupt array must not
   silently partial-restore. *)
let write w t =
  Byteio.Writer.int w t.fmax;
  Byteio.Writer.int_array w t.leaf_used;
  Byteio.Writer.int_array w t.pod_used

let read ~topo r =
  let fmax = Byteio.Reader.int r in
  let leaf_used = Byteio.Reader.int_array r in
  let pod_used = Byteio.Reader.int_array r in
  Byteio.Reader.check (fmax >= 0);
  Byteio.Reader.check (Array.length leaf_used = Topology.num_leaves topo);
  Byteio.Reader.check (Array.length pod_used = topo.Topology.pods);
  let t = { topo; fmax; leaf_used; pod_used } in
  Byteio.Reader.check (check t);
  t

(* {1 Snapshot / reserve / commit}

   A transaction probes capacity against a frozen snapshot plus its own
   reservations, recording every probe's answer. Commit replays the probe
   log against the live ledger: if every answer still holds, the encode
   that drove the probes would have made the identical decisions against
   the live ledger, so its reservations are applied wholesale; the first
   diverging answer aborts the commit with the offending site and leaves
   the ledger untouched. *)

type snapshot = {
  snap_fmax : int;
  snap_leaf : int array;
  snap_pod : int array;
}

let snapshot t =
  {
    snap_fmax = t.fmax;
    snap_leaf = Array.copy t.leaf_used;
    snap_pod = Array.copy t.pod_used;
  }

(* Primitive key for a [site]: leaves on even slots, pods on odd. The txn
   hot path carries keys, never the variant — constructing [Leaf l] with a
   runtime [l] would allocate. *)
let site_key = function Leaf l -> 2 * l | Pod p -> (2 * p) + 1
let site_of_key k = if k land 1 = 0 then Leaf (k lsr 1) else Pod (k lsr 1)

(* Probe log and reservation set as preallocated parallel arrays: a probe
   appends one site key and one answer byte and bumps one sparse counter,
   all in place. Buffer doubling is the only (cold, amortized) allocation
   on the probe path. [x_replay] is commit's scratch so replay does not
   allocate either. *)
type txn = {
  snap : snapshot;
  mutable p_sites : int array;  (* probe log: site keys, in probe order *)
  mutable p_granted : Bytes.t;  (* probe log: answers; '\001' = granted *)
  mutable p_n : int;
  mutable x_sites : int array;  (* reservations: site keys (sparse) *)
  mutable x_counts : int array;  (* reservations: per-site counts *)
  mutable x_replay : int array;  (* commit replay scratch, same keys *)
  mutable x_n : int;
  mutable closed : bool;
}

let txn snap =
  {
    snap;
    p_sites = Array.make 16 0;
    p_granted = Bytes.make 16 '\000';
    p_n = 0;
    x_sites = Array.make 8 0;
    x_counts = Array.make 8 0;
    x_replay = Array.make 8 0;
    x_n = 0;
    closed = false;
  }

(* Index of [key] in the txn's sparse reservation set, or -1. A group
   touches a handful of switches, so the linear scan beats any table. *)
(* elmo-lint: zero-alloc *)
let rec x_find (keys : int array) n key i =
  if i >= n then -1
  else if Array.unsafe_get keys i = key then i
  else x_find keys n key (i + 1)

let grow_log txn =
  let cap = 2 * Array.length txn.p_sites in
  let sites = Array.make cap 0 in
  Array.blit txn.p_sites 0 sites 0 txn.p_n;
  txn.p_sites <- sites;
  let granted = Bytes.make cap '\000' in
  Bytes.blit txn.p_granted 0 granted 0 txn.p_n;
  txn.p_granted <- granted

let grow_extra txn =
  let cap = 2 * Array.length txn.x_sites in
  let grow a =
    let b = Array.make cap 0 in
    Array.blit a 0 b 0 txn.x_n;
    b
  in
  txn.x_sites <- grow txn.x_sites;
  txn.x_counts <- grow txn.x_counts;
  txn.x_replay <- grow txn.x_replay

(* elmo-lint: zero-alloc *)
let txn_probe txn key base_used =
  if txn.closed then
    (* elmo-lint: allow zero-alloc — API-misuse guard: raising allocates, cold *)
    invalid_arg "Srule_state: transaction already committed"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  let xi = x_find txn.x_sites txn.x_n key 0 in
  let extra = if xi >= 0 then Array.unsafe_get txn.x_counts xi else 0 in
  let granted = base_used + extra < txn.snap.snap_fmax in
  if txn.p_n >= Array.length txn.p_sites then
    (* elmo-lint: allow zero-alloc — cold probe-log doubling, amortized *)
    grow_log txn;
  Array.unsafe_set txn.p_sites txn.p_n key;
  Bytes.unsafe_set txn.p_granted txn.p_n (if granted then '\001' else '\000');
  txn.p_n <- txn.p_n + 1;
  if granted then
    if xi >= 0 then Array.unsafe_set txn.x_counts xi (extra + 1)
    else begin
      if txn.x_n >= Array.length txn.x_sites then
        (* elmo-lint: allow zero-alloc — cold reservation-set doubling, amortized *)
        grow_extra txn;
      Array.unsafe_set txn.x_sites txn.x_n key;
      Array.unsafe_set txn.x_counts txn.x_n 1;
      txn.x_n <- txn.x_n + 1
    end;
  granted

(* elmo-lint: zero-alloc *)
let txn_reserve_leaf txn l = txn_probe txn (2 * l) txn.snap.snap_leaf.(l)

(* elmo-lint: zero-alloc *)
let txn_reserve_pod txn p = txn_probe txn ((2 * p) + 1) txn.snap.snap_pod.(p)

let txn_reserved txn =
  let s = ref 0 in
  for i = 0 to txn.x_n - 1 do
    s := !s + txn.x_counts.(i)
  done;
  !s

(* Every site the transaction has probed (granted or not), deduplicated.
   This is exactly the set of live-ledger cells {!commit} will read — and a
   subset of them the cells it will write — so a sharded committer can check
   that a group's transaction stays inside the pods its tree claims. *)
let txn_sites txn =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  for i = 0 to txn.p_n - 1 do
    let k = txn.p_sites.(i) in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      acc := site_of_key k :: !acc
    end
  done;
  !acc

(* elmo-lint: zero-alloc *)
let live_used t key =
  if key land 1 = 0 then Array.unsafe_get t.leaf_used (key lsr 1)
  else Array.unsafe_get t.pod_used (key lsr 1)

(* Replay probe [i..]: the replay extra counts live in the txn's own
   [x_replay] scratch (zeroed by the caller), looked up through the same
   sparse key set — a key absent from [x_sites] was never granted, so its
   replay extra is always 0. *)
(* elmo-lint: zero-alloc *)
let rec replay_probes t txn i =
  if i >= txn.p_n then Ok ()
  else begin
    let k = Array.unsafe_get txn.p_sites i in
    let xi = x_find txn.x_sites txn.x_n k 0 in
    let e = if xi >= 0 then Array.unsafe_get txn.x_replay xi else 0 in
    let granted = Bytes.unsafe_get txn.p_granted i = '\001' in
    let granted' = live_used t k + e < t.fmax in
    if granted' <> granted then
      (* elmo-lint: allow zero-alloc — conflict path: reporting the site allocates *)
      Error (site_of_key k)
    else begin
      (* [granted] implies [xi >= 0]: the original run reserved this key. *)
      if granted then Array.unsafe_set txn.x_replay xi (e + 1);
      replay_probes t txn (i + 1)
    end
  end

(* elmo-lint: zero-alloc *)
let commit_impl t txn =
  Array.fill txn.x_replay 0 txn.x_n 0;
  let result = replay_probes t txn 0 in
  (match result with
  | Ok () ->
      for xi = 0 to txn.x_n - 1 do
        let k = Array.unsafe_get txn.x_sites xi in
        let n = Array.unsafe_get txn.x_counts xi in
        if k land 1 = 0 then begin
          let l = k lsr 1 in
          Array.unsafe_set t.leaf_used l (Array.unsafe_get t.leaf_used l + n)
        end
        else begin
          let p = k lsr 1 in
          Array.unsafe_set t.pod_used p (Array.unsafe_get t.pod_used p + n)
        end
      done
  | Error _ -> Obs.incr "srule.commit_conflicts");
  txn.closed <- true;
  result

let commit t txn =
  if txn.closed then invalid_arg "Srule_state.commit: transaction already committed"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Obs.with_span "srule.commit" @@ fun () ->
  Obs.incr "srule.commits";
  Obs.observe "srule.txn_probes" (float_of_int txn.p_n);
  commit_impl t txn
