(** Group-table (s-rule) occupancy of the network switches (§3.1 D5).

    Each physical switch holds at most [fmax] s-rules. Downstream p-rules
    address {e logical} switches, so an s-rule for a pod's logical spine must
    be installed on every physical spine of the pod (any of them may receive
    the packet under multipath); a leaf s-rule lands on that one leaf. We
    therefore track leaf occupancy per leaf and spine occupancy per pod (the
    per-physical-spine count equals its pod's count). *)

type t

val create : Topology.t -> fmax:int -> t

val fmax : t -> int

val leaf_has_space : t -> int -> bool
val pod_has_space : t -> int -> bool
(** Space on {e all} physical spines of the pod. *)

val reserve_leaf : t -> int -> unit
(** Raises [Failure] if the leaf is full (callers must check first). *)

val reserve_pod : t -> int -> unit

val release_leaf : t -> int -> unit
(** Raises [Failure] on underflow. *)

val release_pod : t -> int -> unit

val leaf_used : t -> int -> int
(** Current s-rule count of one leaf. *)

val pod_used : t -> int -> int
(** Current s-rule count of one pod (per physical spine of the pod). *)

val leaf_occupancy : t -> int array
(** Copy of the per-leaf s-rule counts. *)

val spine_occupancy : t -> int array
(** Per-physical-spine s-rule counts (derived from pod counts). *)

val total_srules : t -> int
(** Total installed s-rule entries across all physical switches. *)
