(** Group-table (s-rule) occupancy of the network switches (§3.1 D5).

    Each physical switch holds at most [fmax] s-rules. Downstream p-rules
    address {e logical} switches, so an s-rule for a pod's logical spine must
    be installed on every physical spine of the pod (any of them may receive
    the packet under multipath); a leaf s-rule lands on that one leaf. We
    therefore track leaf occupancy per leaf and spine occupancy per pod (the
    per-physical-spine count equals its pod's count).

    The ledger has two faces. The {e live} API ({!reserve_leaf},
    {!release_leaf}, …) mutates directly — the sequential encode path. The
    {e transactional} API ({!snapshot} → {!txn} → {!commit}) lets a batch of
    group encodes run in parallel against a frozen snapshot and commit
    sequentially, detecting the (rare) encodes whose capacity decisions the
    interleaving invalidated. *)

type site = Leaf of int | Pod of int

val site_key : site -> int
(** Injective primitive-int key for a [site] (leaves on even slots, pods on
    odd), for callers that need to key hash tables by switch without leaning
    on polymorphic hashing of the variant. *)

exception Full of site
(** Raised by {!reserve_leaf} / {!reserve_pod} when the switch is full
    (callers must check first). *)

exception Underflow of site
(** Raised by {!release_leaf} / {!release_pod} on a zero counter. *)

type t

val create : Topology.t -> fmax:int -> t

val copy : t -> t
(** Independent copy of the occupancy counters (same topology and [fmax]).
    Used by {!Controller.snapshot} for crash-consistent checkpoints. *)

val fmax : t -> int

val leaf_has_space : t -> int -> bool
val pod_has_space : t -> int -> bool
(** Space on {e all} physical spines of the pod. *)

val reserve_leaf : t -> int -> unit
val reserve_pod : t -> int -> unit
val release_leaf : t -> int -> unit
val release_pod : t -> int -> unit

val leaf_used : t -> int -> int
(** Current s-rule count of one leaf. *)

val pod_used : t -> int -> int
(** Current s-rule count of one pod (per physical spine of the pod). *)

val leaf_occupancy : t -> int array
(** Copy of the per-leaf s-rule counts. *)

val spine_occupancy : t -> int array
(** Per-physical-spine s-rule counts (derived from pod counts). *)

val total_srules : t -> int
(** Total installed s-rule entries across all physical switches. *)

val check : t -> bool
(** Invariant: [0 <= used <= fmax] on every leaf and pod counter. Asserted
    after every batch commit phase and in tests. *)

val write : Byteio.Writer.t -> t -> unit
(** Durable wire codec (snapshot records). *)

val read : topo:Topology.t -> Byteio.Reader.t -> t
(** Inverse of {!write}. Validates the persisted array lengths against
    [topo] and re-checks the occupancy invariant; raises
    {!Byteio.Reader.Corrupt} on any violation. *)

(** {1 Snapshot / reserve / commit (two-phase batch encoding)} *)

type snapshot
(** Immutable copy of the occupancy counters at one instant. Sharing a
    snapshot across domains is safe: it is never mutated. *)

type txn
(** A reservation transaction over a snapshot: capacity probes answer
    against snapshot + own reservations and are recorded in a probe log.
    The log and the reservation set are preallocated flat arrays, so the
    probe path ({!txn_reserve_leaf} / {!txn_reserve_pod}) and the commit
    replay are allocation-free apart from cold amortized buffer doubling
    (checked by the [zero-alloc] lint rule). A txn is single-domain (not
    thread-safe); each parallel group encode gets its own. *)

val snapshot : t -> snapshot

val txn : snapshot -> txn

val txn_reserve_leaf : txn -> int -> bool
(** Probe-and-reserve: [true] when the leaf has space under snapshot plus
    this transaction's prior reservations (the reservation is then taken),
    [false] otherwise. Every call is logged for {!commit} replay. Raises
    [Invalid_argument] after the txn was committed. *)

val txn_reserve_pod : txn -> int -> bool

val txn_reserved : txn -> int
(** Reservations currently held (logical entries: a pod counts once). *)

val txn_sites : txn -> site list
(** Every site the transaction has probed so far (granted or not),
    deduplicated, in unspecified order. This is exactly the set of live
    cells {!commit} will read (and, for granted probes, write) — the basis
    for the sharded committer's check that a group's transaction never
    leaves the pods its tree spans. *)

(** {2 Concurrent-commit contract}

    [commit] reads the live ledger only at the transaction's probed sites
    and, on success, writes only those sites (sparse per-site deltas — never
    a whole-array store). Two commits whose probed-site sets are disjoint
    therefore touch disjoint [int array] cells, which OCaml's memory model
    makes race-free: the per-pod sharded controller runs such commits
    concurrently on one shared ledger, with each pod's cells owned by
    exactly one shard at a time. Commits that share a site must still be
    serialized by the caller. *)

val commit : t -> txn -> (unit, site) result
(** Replays the probe log against the live ledger. If every probe's answer
    is unchanged, the encode that issued them would have run identically
    against the live ledger: its reservations are applied and the result is
    [Ok ()]. On the first diverging probe the ledger is left untouched and
    [Error site] names the switch whose capacity decision flipped — the
    caller must re-encode against the live ledger. Either way the txn is
    closed; committing twice raises [Invalid_argument]. *)
