let flow_hash ~group ~sender =
  (* splitmix-style mix for a stable choice per (group, sender) flow *)
  let z = (group * 0x9E3779B9) lxor (sender * 0x85EBCA6B) in
  let z = (z lxor (z lsr 15)) * 0x2545F491 in
  abs (z lxor (z lsr 13))

let spine_choice topo ~hash = hash mod topo.Topology.spines_per_pod

let core_choice topo ~hash ~plane =
  if Topology.is_two_tier topo then
    invalid_arg "Ecmp.core_choice: two-tier topology has no cores"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  (* Re-mix before reducing: [hash mod spines_per_pod] and
     [hash mod cores_per_plane] are correlated whenever one modulus divides
     the other (e.g. 4 and 12 on the Facebook fabric), which would collapse
     the spine x core choice onto a diagonal and waste bisection
     bandwidth. *)
  let h = hash lxor (hash lsr 17) in
  let h = abs (h * 0x2545F491) in
  (plane * topo.Topology.cores_per_plane) + (h mod topo.Topology.cores_per_plane)
