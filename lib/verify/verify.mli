(** The symbolic forwarding-equivalence layer: compiles an installed
    configuration ({!Installed_config.t}) into canonical delivery
    predicates ({!Pred.t}) and decides equivalence/subsumption with
    counterexample witnesses.

    Three compilers interpret the same rule language at different levels:

    - {!compile} — sender-agnostic: the set of tree edges the installed
      downstream state (p-rules, compensated stale entries, s-rules,
      default p-rules) guarantees to {e every} sender, intersected with
      the group's specification tree (the {!Tree.t} of its receivers).
      Spurious ports from rule sharing are abstracted away, so two
      encodings of the same membership — e.g. the incremental engine's
      and a from-scratch re-encode's — compile to the {e same} predicate
      exactly when they deliver to the same receivers.
    - {!compile_sender} — per-sender: the exact delivery edges of one
      sender's packet, mirroring the data-plane walk (upstream rules,
      per-sender overrides, ECMP choices, switch/link health) without
      abstracting spurious ports. The chaos oracle's zero-blackhole
      property is [subsumes ~big:(compile_sender faulted) ~small:
      (receiver_endpoints ...)]. Note this is a {e coverage} statement:
      duplicate delivery is invisible to a set-based predicate and stays
      the packet-level probe's job.
    - {!header_pred} — header-only: interprets a raw {!Prule.header} on an
      all-healthy fabric with {e empty} group tables (p-rules and default
      only). Because it depends on nothing but the header's own bits, it
      is the codec round-trip oracle: encode/decode must preserve it.

    All predicates from one checking session must be interned in one
    {!Pred.ctx}. *)

type witness = {
  w_group : int;
  w_switch : Pred.switch;
  w_port : int;
}
(** A counterexample: the canonically first forwarding edge on which two
    predicates disagree. Because predicates sort core before spines before
    leaves, the witness names the {e topmost} divergence. *)

val pp_witness : Format.formatter -> witness -> unit
(** Renders [gid/switch/port], e.g. [7/leaf3/5]. *)

(** {1 Compilers} *)

val compile : Pred.ctx -> Installed_config.t -> group:int -> Pred.t
(** The canonical delivery predicate of one group: for every receiver pod,
    leaf and host port of the specification tree, the edge is present iff
    the installed state forwards on it under {e both} reachability modes
    (in-pod via the upstream spine rule's tree bitmap; cross-pod — on
    multi-pod topologies — via the core bitmap and the downstream spine
    assignment), with each layer gated on its parent. Downstream
    assignments follow the switch parser: p-rule scan, then the
    compensated truthful entry at a stale site, then the s-rule, then the
    default p-rule. A group with no receivers or no installed encoding
    compiles to the empty predicate. *)

val intent : Pred.ctx -> Installed_config.t -> group:int -> Pred.t
(** What the group's membership {e means}: every edge of the specification
    tree present. [compile cfg g] equals [intent cfg g] exactly when the
    installed state loses no receiver. *)

val compile_sender :
  Pred.ctx -> Installed_config.t -> group:int -> sender:int -> Pred.t option
(** The exact delivery edges of [sender]'s packet under the installed
    state and recorded health: upstream overrides replace multipath, ECMP
    plane/core choices use {!Ecmp.flow_hash}, and dead spines, cores and
    leaf↔spine links cut the walk exactly where {!Fabric.inject} would
    lose the packet. Unlike {!compile} this does {e not} intersect with
    the specification tree — spurious ports from rule sharing appear, as
    they do on the wire. [None] when the group has no encoding or the
    sender is degraded to hypervisor unicast (nothing traverses the
    fabric). *)

val receiver_endpoints :
  Pred.ctx -> Installed_config.t -> group:int -> sender:int -> Pred.t
(** The endpoint-only obligation of a sender: one [Leaf] edge per receiver
    other than the sender itself. The [small] side of the zero-blackhole
    subsumption. *)

val header_pred :
  Pred.ctx -> Topology.t -> sender:int -> Prule.header -> Pred.t
(** Interprets a raw header from [sender]'s leaf on an all-healthy fabric
    with empty group tables: upstream rules walk up (any plane — the
    logical predicate is plane-free), the core rule fans out to pods, and
    each downstream layer matches p-rules then the default. Depends only
    on the header's bits, making it the codec round-trip invariant. *)

(** {1 Hostile-header admission} *)

type admit_error =
  | Malformed of Header_codec.decode_error
      (** structural rejection by [Header_codec.decode_checked] *)
  | Over_delivery of witness
      (** the header's own bits deliver to an edge outside the intent; the
          witness names the first such edge (its group field is 0 —
          admission is per-header, not per-group) *)

val pp_admit_error : Format.formatter -> admit_error -> unit

val admit_header :
  Pred.ctx ->
  Topology.t ->
  intent:Pred.t ->
  sender:int ->
  bytes ->
  (Prule.header, admit_error) result
(** Total admission control for headers of unknown provenance: structural
    decoding via [Header_codec.decode_checked], then the semantic gate —
    the header is accepted only when {!header_pred} of its own bits is
    subsumed by [intent] (interned in the same [ctx]). Never raises, and
    never accepts a header that would deliver beyond the intent. *)

(** {1 Decision procedures} *)

val equiv : Pred.t -> Pred.t -> bool
(** {!Pred.equiv} — constant-time pointer equality within one universe. *)

val subsumes : big:Pred.t -> small:Pred.t -> bool
(** {!Pred.subsumes}. *)

val diff : group:int -> Pred.t -> Pred.t -> witness option
(** The first edge present in exactly one predicate, as a witness. *)

val check_equiv : group:int -> Pred.t -> Pred.t -> (unit, witness) result
(** [Ok ()] iff the edge sets are equal; otherwise the first divergence. *)

val check_subsumes :
  group:int -> big:Pred.t -> small:Pred.t -> (unit, witness) result
(** [Ok ()] iff every edge of [small] is in [big]; otherwise the first
    missing edge. *)

val check_config : Installed_config.t -> (int, witness) result
(** Checks [compile = intent] for every group of the view, in ascending
    group order. [Ok n] after checking [n] groups; [Error w] names the
    first counterexample — the first receiver-path edge the installed
    state fails to cover. *)

val check_controller : Controller.t -> (int, witness) result
(** {!check_config} on the controller's own {!Controller.installed_config}
    view — a live controller checked against its own trees. *)

(** {1 Incremental checking}

    {!compile} and {!intent} depend only on the group's own view and the
    stale table — never on another group, never on the health arrays — so
    an untouched group compiles to the same predicate it did last time. A
    {!cache} keeps one persistent hash-consing context plus the
    (compile, intent) pair of every group whose last check passed;
    re-checking after an event then recompiles only the groups the caller
    marks dirty, making the per-event oracle cost proportional to the
    event's footprint instead of the total group count. *)

type cache

val create_cache : unit -> cache

val cache_ctx : cache -> Pred.ctx
(** The cache's hash-consing context. Predicates a caller compiles itself
    (e.g. an independently-built reference controller's) must be interned
    here to be pointer-comparable with the cached ones. *)

val cached_preds : cache -> int -> (Pred.t * Pred.t) option
(** The (compile, intent) pair the cache holds for a group, if its last
    check passed and it has not been invalidated since. *)

val cache_stats : cache -> int * int
(** Cumulative (hits, misses): groups accepted from cache vs recompiled. *)

val check_config_cached :
  cache -> Installed_config.t -> dirty:int list -> (int, witness) result
(** {!check_config} through the cache: every group in [dirty] is dropped
    and recompiled (a removed group is simply dropped — the view no longer
    lists it); every other cached group passes without recompilation.
    Equivalent to {!check_config} whenever [dirty] includes every group
    whose view changed since the previous call on this cache —
    {!Controller.drain_dirty} provides exactly that set. *)

val check_controller_cached : cache -> Controller.t -> (int, witness) result
(** [check_config_cached] on the controller's own view, draining the
    controller's dirty-group set as the invalidation list. *)

(** {1 Packet-level probe}

    The packet interpretation of the same semantics, extracted here so the
    churn driver and the fault tests share one copy. *)

val probe :
  Controller.t -> Fabric.t -> group:int -> sender:int -> (bool * int) option
(** Compute the controller's current header for [(group, sender)], inject
    it into the fabric, and report [(all receivers other than the sender
    got exactly one copy, link transmissions)]. [None] when the group
    currently has no multicast path to probe (no encoding, or unicast
    fallback — delivered by the hypervisor, not the fabric). *)
