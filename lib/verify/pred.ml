(* Sorted-set normal form with hash-consing. Edges are packed into single
   native ints — tag in the top bits so the canonical (sorted) order is
   Core < Spine _ < Leaf _, then switch id, then port — and a predicate is
   a strictly increasing int array interned in its universe. *)

type switch = Core | Spine of int | Leaf of int

(* 29 bits each for switch id and port covers any topology this codebase
   can represent (bitmap widths are ports-per-switch, far below 2^29). *)
let id_bits = 29
let id_mask = (1 lsl id_bits) - 1

let pack sw port =
  let tag, id = match sw with Core -> (0, 0) | Spine p -> (1, p) | Leaf l -> (2, l) in
  (tag lsl (2 * id_bits)) lor (id lsl id_bits) lor port

let unpack key =
  let tag = key lsr (2 * id_bits) in
  let id = (key lsr id_bits) land id_mask in
  let port = key land id_mask in
  let sw = match tag with 0 -> Core | 1 -> Spine id | _ -> Leaf id in
  (sw, port)

type t = { uid : int; elems : int array }

type ctx = {
  mutable next_uid : int;
  table : (int, t list) Hashtbl.t;  (* content hash -> interned bucket *)
}

let create_ctx () = { next_uid = 0; table = Hashtbl.create 256 }

(* FNV-1a over the packed edges (not [Hashtbl.hash]: deterministic by
   construction and independent of the runtime's hashing). *)
let hash_elems a =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun x ->
      h := (!h lxor (x land 0xffff)) * 0x01000193 land max_int;
      h := (!h lxor ((x lsr 16) land 0xffff)) * 0x01000193 land max_int;
      h := (!h lxor (x lsr 32)) * 0x01000193 land max_int)
    a;
  !h

let equal_elems (a : int array) (b : int array) =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let intern ctx elems =
  let h = hash_elems elems in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt ctx.table h) in
  match List.find_opt (fun t -> equal_elems t.elems elems) bucket with
  | Some t -> t
  | None ->
      let t = { uid = ctx.next_uid; elems } in
      ctx.next_uid <- ctx.next_uid + 1;
      Hashtbl.replace ctx.table h (t :: bucket);
      t

let of_pairs ctx pairs =
  let keys = List.map (fun (sw, port) -> pack sw port) pairs in
  let elems = Array.of_list (List.sort_uniq Int.compare keys) in
  intern ctx elems

let pairs t = Array.to_list (Array.map unpack t.elems)

let leaf_endpoints t ~topo =
  Array.to_list t.elems
  |> List.filter_map (fun key ->
         match unpack key with
         | Leaf l, port -> Some ((l * topo.Topology.hosts_per_leaf) + port)
         | (Core | Spine _), _ -> None)

let cardinal t = Array.length t.elems
let is_empty t = Array.length t.elems = 0
let equiv a b = a == b

let subsumes ~big ~small =
  (* [small]'s sorted elems must be a subsequence of [big]'s. *)
  let nb = Array.length big.elems and ns = Array.length small.elems in
  let rec go ib is =
    if is >= ns then true
    else if ib >= nb then false
    else if big.elems.(ib) = small.elems.(is) then go (ib + 1) (is + 1)
    else if big.elems.(ib) < small.elems.(is) then go (ib + 1) is
    else false
  in
  go 0 0

let first_missing ~big ~small =
  let nb = Array.length big.elems and ns = Array.length small.elems in
  let rec go ib is =
    if is >= ns then None
    else if ib >= nb || big.elems.(ib) > small.elems.(is) then
      Some (unpack small.elems.(is))
    else if big.elems.(ib) = small.elems.(is) then go (ib + 1) (is + 1)
    else go (ib + 1) is
  in
  go 0 0

let first_diff a b =
  let na = Array.length a.elems and nb = Array.length b.elems in
  let rec go ia ib =
    match (ia < na, ib < nb) with
    | false, false -> None
    | true, false -> Some (unpack a.elems.(ia))
    | false, true -> Some (unpack b.elems.(ib))
    | true, true ->
        if a.elems.(ia) = b.elems.(ib) then go (ia + 1) (ib + 1)
        else Some (unpack (min a.elems.(ia) b.elems.(ib)))
  in
  go 0 0

let pp_switch ppf = function
  | Core -> Format.pp_print_string ppf "core"
  | Spine p -> Format.fprintf ppf "spine%d" p
  | Leaf l -> Format.fprintf ppf "leaf%d" l

let pp ppf t =
  Format.pp_print_string ppf "{";
  Array.iteri
    (fun i key ->
      if i > 0 then Format.pp_print_string ppf ", ";
      let sw, port = unpack key in
      Format.fprintf ppf "%a/%d" pp_switch sw port)
    t.elems;
  Format.pp_print_string ppf "}"
