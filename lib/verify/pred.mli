(** Canonical symbolic delivery predicates.

    A predicate is the set of [(switch, port)] forwarding edges an installed
    configuration guarantees to a group's receivers — the {e sorted-set
    normal form} the verification layer ({!Verify}) compiles configurations
    into. Switches are the logical downstream switches of the Elmo paper:
    the single logical core (ports are pods), one logical spine per pod
    (ports are the pod's leaves) and the leaves (ports are hosts).

    Predicates are {e hash-consed} inside an explicit universe ({!ctx}):
    building the same edge set twice in one universe returns the same
    physical value, so {!equiv} is pointer equality. The universe is a
    value, not a global — create one per checking session; predicates from
    different universes must not be mixed (equivalence across universes is
    meaningless and {!equiv} will answer [false]). *)

type switch =
  | Core  (** the logical core; a port is a pod number *)
  | Spine of int  (** logical spine of a pod; a port is a leaf position *)
  | Leaf of int  (** a leaf; a port is a host position *)

type ctx
(** A hash-consing universe. *)

val create_ctx : unit -> ctx

type t
(** A canonical predicate: strictly sorted edge set, hash-consed in its
    universe. The sort order is [Core < Spine _ < Leaf _] (then by switch
    id, then port), so a structural diff surfaces the topmost divergence
    first. *)

val of_pairs : ctx -> (switch * int) list -> t
(** Canonicalizes (sorts, deduplicates) and interns the edge set. Raises
    nothing; an empty list yields the (unique) empty predicate. *)

val pairs : t -> (switch * int) list
(** The edges back, in canonical order. *)

val leaf_endpoints : t -> topo:Topology.t -> int list
(** The delivery endpoints: hosts of the [Leaf] edges, ascending. *)

val cardinal : t -> int
val is_empty : t -> bool

val equiv : t -> t -> bool
(** Pointer equality — constant time. Sound and complete for predicates
    interned in the same {!ctx}. *)

val subsumes : big:t -> small:t -> bool
(** Is every edge of [small] in [big]? Linear merge over the sorted sets. *)

val first_missing : big:t -> small:t -> (switch * int) option
(** The first (canonically smallest) edge of [small] absent from [big] —
    the counterexample witness behind {!Verify.check_subsumes}. *)

val first_diff : t -> t -> (switch * int) option
(** The first edge present in exactly one of the two predicates — the
    witness behind {!Verify.check_equiv}. [None] iff the edge sets are
    equal (content equality, independent of interning). *)

val pp_switch : Format.formatter -> switch -> unit
(** [core], [spine<p>] or [leaf<l>]. *)

val pp : Format.formatter -> t -> unit
(** Renders the edge list, e.g. [{core/2, spine2/0, leaf4/7}]. *)
