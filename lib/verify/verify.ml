type witness = { w_group : int; w_switch : Pred.switch; w_port : int }

let pp_witness ppf w =
  Format.fprintf ppf "%d/%a/%d" w.w_group Pred.pp_switch w.w_switch w.w_port

let bitmap_opt_get bm i =
  match bm with Some bm -> Bitmap.get bm i | None -> false

(* Downstream assignment of one logical switch under the installed state,
   resolved as the switch parser does: p-rule identifier scan, then the
   group-table entry — the compensated truthful bitmap when the site is
   stale, the clustering's s-rule otherwise — then the default p-rule,
   which applies to any switch falling through. [None] means the switch
   forwards nothing (equivalently, an empty bitmap). *)
let assigned cfg ~group ~site (enc : Encoding.t) =
  let layer, id, truthful =
    match site with
    | Srule_state.Leaf l ->
        (enc.Encoding.d_leaf, l, Tree.leaf_bitmap enc.Encoding.tree l)
    | Srule_state.Pod p ->
        (enc.Encoding.d_spine, p, Tree.spine_bitmap enc.Encoding.tree p)
  in
  match
    List.find_opt (fun r -> Prule.rule_mem r id) layer.Clustering.prules
  with
  | Some r -> Some r.Prule.bitmap
  | None ->
      if Installed_config.is_stale cfg ~group site then truthful
      else (
        match List.assoc_opt id layer.Clustering.srules with
        | Some bm -> Some bm
        | None -> (
            match layer.Clustering.default with
            | Some (_, bm) -> Some bm
            | None -> None))

let compile ctx cfg ~group =
  match Installed_config.group cfg group with
  | None -> Pred.of_pairs ctx []
  | Some g -> (
      match (g.Installed_config.receivers, g.Installed_config.enc) with
      | [], _ | _, None -> Pred.of_pairs ctx []
      | receivers, Some enc ->
          let topo = cfg.Installed_config.topo in
          let spec = Tree.of_members topo receivers in
          let tree = enc.Encoding.tree in
          (* On a multi-pod topology some sender always sits outside any
             given pod, so cross-pod reachability (core bitmap + downstream
             spine assignment) is required for every receiver pod — the
             encoder sets the core bit even for single-pod trees. *)
          let cross_pod = topo.Topology.pods > 1 in
          let acc = ref [] in
          let add sw port = acc := (sw, port) :: !acc in
          List.iter
            (fun (p, spec_spine) ->
              let core_covered =
                (not cross_pod) || Bitmap.get tree.Tree.core_bitmap p
              in
              if cross_pod && core_covered then add Pred.Core p;
              let in_pod = Tree.spine_bitmap tree p in
              let down_spine =
                if cross_pod then
                  assigned cfg ~group ~site:(Srule_state.Pod p) enc
                else None
              in
              Bitmap.iter
                (fun lp ->
                  let spine_covered =
                    bitmap_opt_get in_pod lp
                    && ((not cross_pod)
                       || (core_covered && bitmap_opt_get down_spine lp))
                  in
                  if spine_covered then begin
                    add (Pred.Spine p) lp;
                    let l = (p * topo.Topology.leaves_per_pod) + lp in
                    match
                      ( Tree.leaf_bitmap spec l,
                        assigned cfg ~group ~site:(Srule_state.Leaf l) enc,
                        Tree.leaf_bitmap tree l )
                    with
                    | Some spec_ports, Some down_leaf, Some tree_ports ->
                        Bitmap.iter
                          (fun q ->
                            if Bitmap.get down_leaf q && Bitmap.get tree_ports q
                            then add (Pred.Leaf l) q)
                          spec_ports
                    | _, _, _ -> ()
                  end)
                spec_spine)
            spec.Tree.spine_bitmaps;
          Pred.of_pairs ctx !acc)

let intent ctx cfg ~group =
  match Installed_config.group cfg group with
  | None -> Pred.of_pairs ctx []
  | Some g -> (
      match g.Installed_config.receivers with
      | [] -> Pred.of_pairs ctx []
      | receivers ->
          let topo = cfg.Installed_config.topo in
          let spec = Tree.of_members topo receivers in
          let cross_pod = topo.Topology.pods > 1 in
          let acc = ref [] in
          let add sw port = acc := (sw, port) :: !acc in
          List.iter
            (fun (p, bm) ->
              if cross_pod then add Pred.Core p;
              Bitmap.iter (fun lp -> add (Pred.Spine p) lp) bm)
            spec.Tree.spine_bitmaps;
          List.iter
            (fun (l, bm) -> Bitmap.iter (fun q -> add (Pred.Leaf l) q) bm)
            spec.Tree.leaf_bitmaps;
          Pred.of_pairs ctx !acc)

let compile_sender ctx cfg ~group ~sender =
  match Installed_config.group cfg group with
  | None -> None
  | Some g -> (
      match g.Installed_config.enc with
      | None -> None
      | Some enc -> (
          let ov = List.assoc_opt sender g.Installed_config.overrides in
          match ov with
          | Some o when o.Installed_config.unicast -> None
          | ov ->
              let topo = cfg.Installed_config.topo in
              let tree = enc.Encoding.tree in
              let cpp = topo.Topology.cores_per_plane in
              let lpp = topo.Topology.leaves_per_pod in
              let sl = Topology.leaf_of_host topo sender in
              let sp = Topology.pod_of_leaf topo sl in
              let hash = Ecmp.flow_hash ~group ~sender in
              let acc = ref [] in
              let add sw port = acc := (sw, port) :: !acc in
              (* Co-located delivery: the sender leaf's tree ports minus
                 the sender itself (the hypervisor serves co-resident
                 member VMs directly). *)
              (match Tree.leaf_bitmap tree sl with
              | None -> ()
              | Some bm ->
                  let sport = Topology.host_port_on_leaf topo sender in
                  Bitmap.iter
                    (fun q -> if q <> sport then add (Pred.Leaf sl) q)
                    bm);
              let at_leaf_down l =
                match assigned cfg ~group ~site:(Srule_state.Leaf l) enc with
                | None -> ()
                | Some bm -> Bitmap.iter (fun q -> add (Pred.Leaf l) q) bm
              in
              let at_spine_down ~plane p =
                match assigned cfg ~group ~site:(Srule_state.Pod p) enc with
                | None -> ()
                | Some bm ->
                    Bitmap.iter
                      (fun lp ->
                        let leaf = (p * lpp) + lp in
                        if Installed_config.link_ok cfg ~leaf ~plane then begin
                          add (Pred.Spine p) lp;
                          at_leaf_down leaf
                        end)
                      bm
              in
              let at_core ~plane c =
                if cfg.Installed_config.core_ok.(c) then
                  (* The header's core bitmap: tree pods minus the
                     sender's own (reached via the upstream spine). *)
                  Bitmap.iter
                    (fun p ->
                      if p <> sp then begin
                        add Pred.Core p;
                        if Installed_config.spine_ok cfg ~pod:p ~plane then
                          at_spine_down ~plane p
                      end)
                    tree.Tree.core_bitmap
              in
              let other_leaves_in_pod =
                List.exists
                  (fun (l, _) -> l <> sl && Topology.pod_of_leaf topo l = sp)
                  tree.Tree.leaf_bitmaps
              in
              let other_pods =
                List.exists (fun (p, _) -> p <> sp) tree.Tree.spine_bitmaps
              in
              let beyond_leaf = other_leaves_in_pod || other_pods in
              let at_spine_up plane =
                (* In-pod downstream: the sender pod's tree leaves minus
                   the sender's own, link-gated per plane. *)
                (match Tree.spine_bitmap tree sp with
                | None -> ()
                | Some bm ->
                    let slp = Topology.leaf_port_on_spine topo sl in
                    Bitmap.iter
                      (fun lp ->
                        if lp <> slp then begin
                          let leaf = (sp * lpp) + lp in
                          if Installed_config.link_ok cfg ~leaf ~plane then begin
                            add (Pred.Spine sp) lp;
                            at_leaf_down leaf
                          end
                        end)
                      bm);
                let cores =
                  match ov with
                  | Some { Installed_config.up_spine_ports = Some ports; _ }
                    when other_pods ->
                      List.map
                        (fun q -> (plane * cpp) + q)
                        (Bitmap.to_list ports)
                  | _ ->
                      if other_pods && cpp > 0 then
                        [ Ecmp.core_choice topo ~hash ~plane ]
                      else []
                in
                List.iter (at_core ~plane) cores
              in
              if beyond_leaf then begin
                let planes =
                  match ov with
                  | Some o -> Bitmap.to_list o.Installed_config.up_leaf_ports
                  | None -> [ Ecmp.spine_choice topo ~hash ]
                in
                List.iter
                  (fun plane ->
                    if
                      Installed_config.link_ok cfg ~leaf:sl ~plane
                      && Installed_config.spine_ok cfg ~pod:sp ~plane
                    then at_spine_up plane)
                  planes
              end;
              Some (Pred.of_pairs ctx !acc)))

let receiver_endpoints ctx cfg ~group ~sender =
  match Installed_config.group cfg group with
  | None -> Pred.of_pairs ctx []
  | Some g ->
      let topo = cfg.Installed_config.topo in
      g.Installed_config.receivers
      |> List.filter_map (fun h ->
             if h = sender then None
             else
               Some
                 ( Pred.Leaf (Topology.leaf_of_host topo h),
                   Topology.host_port_on_leaf topo h ))
      |> Pred.of_pairs ctx

let header_pred ctx topo ~sender (h : Prule.header) =
  let lpp = topo.Topology.leaves_per_pod in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in
  let acc = ref [] in
  let add sw port = acc := (sw, port) :: !acc in
  let matched rules id default =
    match List.find_opt (fun r -> Prule.rule_mem r id) rules with
    | Some r -> Some r.Prule.bitmap
    | None -> default
  in
  let at_leaf_down l =
    match matched h.Prule.d_leaf l h.Prule.d_leaf_default with
    | None -> ()
    | Some bm -> Bitmap.iter (fun q -> add (Pred.Leaf l) q) bm
  in
  let at_spine_down p =
    match matched h.Prule.d_spine p h.Prule.d_spine_default with
    | None -> ()
    | Some bm ->
        Bitmap.iter
          (fun lp ->
            add (Pred.Spine p) lp;
            at_leaf_down ((p * lpp) + lp))
          bm
  in
  let at_core () =
    match h.Prule.core with
    | None -> ()
    | Some bm ->
        Bitmap.iter
          (fun p ->
            add Pred.Core p;
            at_spine_down p)
          bm
  in
  let at_spine_up () =
    match h.Prule.u_spine with
    | None -> ()
    | Some u ->
        Bitmap.iter
          (fun lp ->
            add (Pred.Spine sp) lp;
            at_leaf_down ((sp * lpp) + lp))
          u.Prule.down;
        if u.Prule.multipath then begin
          if topo.Topology.cores_per_plane > 0 then at_core ()
        end
        else if not (Bitmap.is_empty u.Prule.up) then at_core ()
  in
  let u = h.Prule.u_leaf in
  Bitmap.iter (fun q -> add (Pred.Leaf sl) q) u.Prule.down;
  if u.Prule.multipath || not (Bitmap.is_empty u.Prule.up) then at_spine_up ();
  Pred.of_pairs ctx !acc

let equiv = Pred.equiv
let subsumes = Pred.subsumes

let witness ~group (sw, port) =
  { w_group = group; w_switch = sw; w_port = port }

let diff ~group a b = Option.map (witness ~group) (Pred.first_diff a b)

let check_equiv ~group a b =
  match Pred.first_diff a b with
  | None -> Ok ()
  | Some e -> Error (witness ~group e)

let check_subsumes ~group ~big ~small =
  match Pred.first_missing ~big ~small with
  | None -> Ok ()
  | Some e -> Error (witness ~group e)

(* {1 Hostile-header admission}

   The semantic half of hostile-header hardening, layered over
   [Header_codec.decode_checked]'s structural half: a decoded header is
   admitted only when the deliveries its own bits imply are a subset of
   the caller's intent predicate. Never raises — structural rejection and
   over-delivery both come back as typed errors. *)

type admit_error =
  | Malformed of Header_codec.decode_error
  | Over_delivery of witness

let pp_admit_error ppf = function
  | Malformed e -> Header_codec.pp_decode_error ppf e
  | Over_delivery w ->
      Format.fprintf ppf "over-delivery at %a" pp_witness w

let admit_header ctx topo ~intent ~sender data =
  match Header_codec.decode_checked topo data with
  | Error e -> Error (Malformed e)
  | Ok h -> (
      let hp = header_pred ctx topo ~sender h in
      (* group number 0: admission is per-header; the witness's group field
         is not meaningful here. *)
      match check_subsumes ~group:0 ~big:intent ~small:hp with
      | Ok () -> Ok h
      | Error w -> Error (Over_delivery w))

let check_config cfg =
  let ctx = Pred.create_ctx () in
  let rec go n = function
    | [] -> Ok n
    | gid :: rest -> (
        let c = compile ctx cfg ~group:gid in
        let i = intent ctx cfg ~group:gid in
        match check_equiv ~group:gid c i with
        | Ok () -> go (n + 1) rest
        | Error w -> Error w)
  in
  go 0 (Installed_config.group_ids cfg)

(* {1 Incremental checking}

   [compile] and [intent] depend only on the group's own view (members,
   encoding, overrides) and the stale table — never on another group and
   never on the health arrays — so a group whose view did not change since
   the last check compiles to the same predicate. The cache keeps one
   persistent hash-consing context and the (compile, intent) pair of every
   group that last checked [Ok]; a check then recompiles only the groups
   the caller marked dirty (e.g. from [Controller.drain_dirty]), making
   the per-event oracle cost proportional to the event's footprint instead
   of the total group count. *)

type cache = {
  c_ctx : Pred.ctx;
  c_preds : (int, Pred.t * Pred.t) Hashtbl.t;
      (* gid -> (compile, intent), both interned in [c_ctx]; present only
         for groups whose last check passed, so a cached group needs no
         re-check — equal then means equal now *)
  mutable c_hits : int;
  mutable c_misses : int;
}

let create_cache () =
  {
    c_ctx = Pred.create_ctx ();
    c_preds = Hashtbl.create 256;
    c_hits = 0;
    c_misses = 0;
  }

let cache_ctx cache = cache.c_ctx
let cached_preds cache gid = Hashtbl.find_opt cache.c_preds gid
let cache_stats cache = (cache.c_hits, cache.c_misses)

let check_config_cached cache cfg ~dirty =
  (* Dirty groups (including removed ones, which the view no longer
     lists) drop out of the cache before the walk. *)
  List.iter (fun gid -> Hashtbl.remove cache.c_preds gid) dirty;
  let rec go n = function
    | [] -> Ok n
    | gid :: rest -> (
        match Hashtbl.find_opt cache.c_preds gid with
        | Some _ ->
            cache.c_hits <- cache.c_hits + 1;
            go (n + 1) rest
        | None -> (
            cache.c_misses <- cache.c_misses + 1;
            let c = compile cache.c_ctx cfg ~group:gid in
            let i = intent cache.c_ctx cfg ~group:gid in
            match check_equiv ~group:gid c i with
            | Ok () ->
                Hashtbl.add cache.c_preds gid (c, i);
                go (n + 1) rest
            | Error w -> Error w))
  in
  go 0 (Installed_config.group_ids cfg)

let check_controller ctrl = check_config (Controller.installed_config ctrl)

let check_controller_cached cache ctrl =
  check_config_cached cache
    (Controller.installed_config ctrl)
    ~dirty:(Controller.drain_dirty ctrl)

let probe ctrl fabric ~group ~sender =
  match Controller.encoding ctrl ~group with
  | None -> None
  | Some enc -> (
      match Controller.header ctrl ~group ~sender with
      | None -> None
      | Some header ->
          let report = Fabric.inject fabric ~sender ~group ~header ~payload:64 in
          let ok =
            Fabric.deliveries_correct report ~tree:enc.Encoding.tree ~sender
          in
          Some (ok, report.Fabric.transmissions))
