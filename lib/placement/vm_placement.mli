(** Tenant VM placement simulator (§5.1.1).

    Mimics the paper's setup: a configurable number of tenants whose VM
    counts follow a clamped exponential distribution (min 10, mean ≈178.77,
    max 5,000); each host holds at most [host_capacity] VMs; a tenant's VMs
    never share a physical host.

    The placement strategy picks a pod uniformly at random, then a leaf
    within it, and packs up to [P] VMs of the tenant under that leaf
    ([P] regulates co-location; the paper evaluates P = 1 and P = 12; racks are filled one pod at a time, so small P disperses tenants across pods while large P co-locates them). If the
    chosen leaf has no room, another is chosen until all VMs are placed. *)

exception Capacity_exhausted of string
(** Raised by {!place} when the datacenter cannot hold the requested VMs
    under the capacity constraints, even after relaxing the per-rack
    bound. *)

type strategy =
  | Pack_up_to of int  (** at most [P] VMs of a tenant per rack *)
  | Unlimited  (** no per-rack bound (the "P = All" comparison point) *)

type tenant = {
  tenant_id : int;
  vm_hosts : int array;  (** host of each VM; all distinct *)
}

type t = {
  topo : Topology.t;
  host_capacity : int;
  tenants : tenant array;
  host_load : int array;  (** VMs currently on each host *)
}

val tenant_size_sample :
  Rng.t -> min:int -> mean:float -> max:int -> int
(** Clamped-exponential tenant size. *)

val default_tenant_sizes : Rng.t -> int -> int array
(** [default_tenant_sizes rng n] draws [n] sizes with the paper's parameters
    (min 10, mean 178.77, max 5,000). *)

val place :
  Rng.t ->
  Topology.t ->
  strategy:strategy ->
  host_capacity:int ->
  tenant_sizes:int array ->
  t
(** Places all tenants. Raises {!Capacity_exhausted} if the datacenter
    cannot hold the requested VMs under the constraints. *)

val total_vms : t -> int

val strategy_of_string : string -> strategy option
val pp_strategy : Format.formatter -> strategy -> unit
