exception Capacity_exhausted of string

type strategy = Pack_up_to of int | Unlimited

type tenant = { tenant_id : int; vm_hosts : int array }

type t = {
  topo : Topology.t;
  host_capacity : int;
  tenants : tenant array;
  host_load : int array;
}

let tenant_size_sample rng ~min ~mean ~max =
  let draw = Rng.exponential rng ~mean in
  let size = int_of_float (Float.round draw) in
  Stdlib.max min (Stdlib.min max size)

(* The paper states min 10, median 97, mean 178.77, max 5,000 — jointly
   unrealizable for a (truncated) exponential. We match the median
   (97 = 10 + lambda * ln 2 => lambda ~ 125.5), which reproduces the paper's
   coverage results; the resulting mean is ~135. *)
let default_tenant_sizes rng n =
  Array.init n (fun _ -> tenant_size_sample rng ~min:10 ~mean:135.5 ~max:5000)

(* Consecutive fruitless random pod picks before falling back to a
   deterministic sweep of the whole datacenter. *)
let max_fruitless_pods = 64

let place rng topo ~strategy ~host_capacity ~tenant_sizes =
  if host_capacity <= 0 then invalid_arg "Vm_placement.place: host_capacity";
  let num_leaves = Topology.num_leaves topo in
  let hosts_per_leaf = topo.Topology.hosts_per_leaf in
  let per_rack_bound =
    match strategy with
    | Pack_up_to p ->
        if p <= 0 then invalid_arg "Vm_placement.place: P must be positive";
        min p hosts_per_leaf
    | Unlimited -> hosts_per_leaf
  in
  let host_load = Array.make (Topology.num_hosts topo) 0 in
  let place_tenant tenant_id n_vms =
    let placed = ref [] in
    let remaining = ref n_vms in
    let on_leaf = Hashtbl.create 16 in  (* leaf -> VMs of this tenant there *)
    let used_host = Hashtbl.create (n_vms * 2) in
    let leaf_count l = Option.value ~default:0 (Hashtbl.find_opt on_leaf l) in
    (* Place as many VMs as allowed under [leaf]; returns how many landed.
       A tenant's VMs never share a host. *)
    let try_leaf ?(bound = per_rack_bound) l =
      let allowed = bound - leaf_count l in
      if allowed <= 0 || !remaining <= 0 then 0
      else begin
        let want = min allowed !remaining in
        let landed = ref 0 in
        let base = l * hosts_per_leaf in
        let i = ref 0 in
        while !landed < want && !i < hosts_per_leaf do
          let h = base + !i in
          if host_load.(h) < host_capacity && not (Hashtbl.mem used_host h)
          then begin
            host_load.(h) <- host_load.(h) + 1;
            Hashtbl.replace used_host h ();
            placed := h :: !placed;
            incr landed
          end;
          incr i
        done;
        if !landed > 0 then Hashtbl.replace on_leaf l (leaf_count l + !landed);
        remaining := !remaining - !landed;
        !landed
      end
    in
    (* Fill one pod: visit its leaves in a random order, packing up to P per
       rack, before moving on — the paper's co-locating strategy (§5.1.1). *)
    let fill_pod pod =
      let leaves = Array.of_list (Topology.leaves_of_pod topo pod) in
      Rng.shuffle rng leaves;
      Array.fold_left (fun landed l -> landed + try_leaf l) 0 leaves
    in
    let fruitless = ref 0 in
    while !remaining > 0 do
      let pod = Rng.int rng topo.Topology.pods in
      if fill_pod pod > 0 then fruitless := 0
      else begin
        incr fruitless;
        if !fruitless > max_fruitless_pods then begin
          (* Deterministic sweep so a nearly-full datacenter still
             converges. When every rack is at the per-tenant bound (e.g. a
             5,000-VM tenant under P = 1 on 576 racks), the bound becomes a
             soft preference: relax it rather than fail. *)
          let progressed = ref false in
          for l = 0 to num_leaves - 1 do
            if try_leaf l > 0 then progressed := true
          done;
          if not !progressed then
            for l = 0 to num_leaves - 1 do
              if try_leaf ~bound:hosts_per_leaf l > 0 then progressed := true
            done;
          if not !progressed then
            raise
              (Capacity_exhausted
                 "Vm_placement.place: datacenter cannot hold the requested VMs");
          fruitless := 0
        end
      end
    done;
    { tenant_id; vm_hosts = Array.of_list (List.rev !placed) }
  in
  let tenants = Array.mapi place_tenant tenant_sizes in
  { topo; host_capacity; tenants; host_load }

let total_vms t =
  Array.fold_left (fun acc ten -> acc + Array.length ten.vm_hosts) 0 t.tenants

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "all" | "unlimited" -> Some Unlimited
  | s -> (
      match int_of_string_opt s with
      | Some p when p > 0 -> Some (Pack_up_to p)
      | Some _ | None -> None)

let pp_strategy ppf = function
  | Pack_up_to p -> Format.fprintf ppf "P=%d" p
  | Unlimited -> Format.pp_print_string ppf "P=All"
