type dc = { fabric : Fabric.t; srules : Srule_state.t }

type group_state = {
  members : (int * int) list;  (* (dc, host) *)
  encodings : (int * Encoding.t) list;  (* dc -> local encoding *)
}

type t = {
  params : Params.t;
  dcs : dc array;
  groups : (int, group_state) Hashtbl.t;
}

let create params fabrics =
  if List.is_empty fabrics then invalid_arg "Multidc.create: no datacenters";
  {
    params;
    dcs =
      Array.of_list
        (List.map
           (fun fabric ->
             {
               fabric;
               srules =
                 Srule_state.create (Fabric.topology fabric)
                   ~fmax:params.Params.fmax;
             })
           fabrics);
    groups = Hashtbl.create 16;
  }

let datacenters t = Array.length t.dcs

let local_members st dc = List.filter_map
    (fun (d, h) -> if d = dc then Some h else None)
    st.members

let relay_of st dc =
  match local_members st dc with [] -> None | h :: _ -> Some h

let add_group t ~group members =
  if Hashtbl.mem t.groups group then invalid_arg "Multidc.add_group: group exists";
  if List.length (List.sort_uniq compare members) <> List.length members then
    invalid_arg "Multidc.add_group: duplicate member";
  List.iter
    (fun (d, _) ->
      if d < 0 || d >= Array.length t.dcs then
        invalid_arg "Multidc.add_group: unknown datacenter")
    members;
  let st = { members = List.sort compare members; encodings = [] } in
  let encodings =
    List.filter_map
      (fun dc_idx ->
        match local_members st dc_idx with
        | [] -> None
        | hosts ->
            let dc = t.dcs.(dc_idx) in
            let tree = Tree.of_members (Fabric.topology dc.fabric) hosts in
            let enc = Encoding.encode t.params dc.srules tree in
            Fabric.install_encoding dc.fabric ~group enc;
            Some (dc_idx, enc))
      (List.init (Array.length t.dcs) Fun.id)
  in
  Hashtbl.replace t.groups group { st with encodings }

let remove_group t ~group =
  match Hashtbl.find_opt t.groups group with
  | None -> ()
  | Some st ->
      List.iter
        (fun (dc_idx, enc) ->
          let dc = t.dcs.(dc_idx) in
          Fabric.remove_encoding dc.fabric ~group enc;
          Encoding.release dc.srules enc)
        st.encodings;
      Hashtbl.remove t.groups group

type send_report = {
  local : Fabric.report;
  wan_unicasts : int;
  remote : (int * Fabric.report) list;
}

let find_group t group =
  match Hashtbl.find_opt t.groups group with
  | Some st -> st
  | None -> raise Not_found

let multicast t st ~dc_idx ~sender ~group =
  let enc = List.assoc dc_idx st.encodings in
  let header = Encoding.header_for_sender enc ~sender in
  Fabric.inject t.dcs.(dc_idx).fabric ~sender ~group ~header ~payload:0

let send t ~group ~sender_dc ~sender =
  let st = find_group t group in
  if sender_dc < 0 || sender_dc >= Array.length t.dcs then
    invalid_arg "Multidc.send: unknown datacenter";
  let local =
    if List.mem_assoc sender_dc st.encodings then
      multicast t st ~dc_idx:sender_dc ~sender ~group
    else
      { Fabric.delivered = []; transmissions = 0; header_bytes = 0; lost = 0; trace = [] }
  in
  let remote_dcs =
    List.filter (fun (d, _) -> d <> sender_dc) st.encodings |> List.map fst
  in
  let remote =
    List.map
      (fun dc_idx ->
        let relay = Option.get (relay_of st dc_idx) in
        (* The relay hypervisor re-multicasts; it does not redeliver to its
           own VM (it consumed the WAN copy). *)
        (dc_idx, multicast t st ~dc_idx ~sender:relay ~group))
      remote_dcs
  in
  { local; wan_unicasts = List.length remote_dcs; remote }

let deliveries_correct t ~group ~sender_dc ~sender report =
  let st = find_group t group in
  let got dc host =
    if dc = sender_dc then
      Option.value ~default:0 (List.assoc_opt host report.local.Fabric.delivered)
    else begin
      match List.assoc_opt dc report.remote with
      | None -> 0
      | Some r ->
          let relay = Option.get (relay_of st dc) in
          let wan = if host = relay then 1 else 0 in
          wan + Option.value ~default:0 (List.assoc_opt host r.Fabric.delivered)
    end
  in
  List.for_all
    (fun (dc, host) ->
      if dc = sender_dc && host = sender then true else got dc host = 1)
    st.members
