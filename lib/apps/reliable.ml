type receiver_state = {
  received : (int, unit) Hashtbl.t;  (* sequence numbers held *)
}

type stats = {
  data_sent : int;
  repairs_sent : int;
  naks : int;
  duplicates_discarded : int;
}

type t = {
  fabric : Fabric.t;
  group : int;
  sender : int;
  encoding : Encoding.t;
  receivers : (int, receiver_state) Hashtbl.t;
  mutable next_seq : int;
  mutable data_sent : int;
  mutable repairs_sent : int;
  mutable naks : int;
  mutable duplicates : int;
}

let create fabric ~group ~sender encoding =
  let receivers = Hashtbl.create 16 in
  Tree.iter_members
    (fun h ->
      if h <> sender then Hashtbl.replace receivers h { received = Hashtbl.create 16 })
    encoding.Encoding.tree;
  {
    fabric;
    group;
    sender;
    encoding;
    receivers;
    next_seq = 0;
    data_sent = 0;
    repairs_sent = 0;
    naks = 0;
    duplicates = 0;
  }

(* One multicast of sequence [seq]: receivers record it, deduplicating. *)
let transmit t seq =
  let header = Encoding.header_for_sender t.encoding ~sender:t.sender in
  let report =
    Fabric.inject t.fabric ~sender:t.sender ~group:t.group ~header ~payload:seq
  in
  List.iter
    (fun (host, copies) ->
      match Hashtbl.find_opt t.receivers host with
      | None -> () (* spurious delivery to a non-member: hypervisor discards *)
      | Some st ->
          let dup_copies = if Hashtbl.mem st.received seq then copies else copies - 1 in
          t.duplicates <- t.duplicates + max 0 dup_copies;
          Hashtbl.replace st.received seq ())
    report.Fabric.delivered

let broadcast t ~payload:_ =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.data_sent <- t.data_sent + 1;
  transmit t seq;
  seq

let missing_of st ~upto =
  let rec go seq acc =
    if seq < 0 then acc
    else go (seq - 1) (if Hashtbl.mem st.received seq then acc else seq :: acc)
  in
  go (upto - 1) []

let repair_round t =
  (* Collect NAKs from every receiver, then retransmit the union once —
     PGM's NAK suppression. *)
  let wanted = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _host st ->
      match missing_of st ~upto:t.next_seq with
      | [] -> ()
      | missing ->
          t.naks <- t.naks + 1;
          List.iter (fun seq -> Hashtbl.replace wanted seq ()) missing)
    t.receivers;
  let seqs = Hashtbl.fold (fun s () acc -> s :: acc) wanted [] |> List.sort compare in
  List.iter
    (fun seq ->
      t.repairs_sent <- t.repairs_sent + 1;
      transmit t seq)
    seqs;
  List.length seqs

let complete t =
  Hashtbl.fold
    (fun _ st acc -> acc && missing_of st ~upto:t.next_seq = [])
    t.receivers true

let repair_until_complete ?(max_rounds = 16) t =
  let rec go n =
    if complete t then true
    else if n = 0 then false
    else begin
      let sent = repair_round t in
      if sent = 0 then complete t else go (n - 1)
    end
  in
  go max_rounds

let receivers t =
  Hashtbl.fold (fun h _ acc -> h :: acc) t.receivers [] |> List.sort compare

let delivered_in_order t host =
  match Hashtbl.find_opt t.receivers host with
  | None -> raise Not_found
  | Some st ->
      let rec go seq = if Hashtbl.mem st.received seq then go (seq + 1) else seq in
      go 0

let stats t =
  {
    data_sent = t.data_sent;
    repairs_sent = t.repairs_sent;
    naks = t.naks;
    duplicates_discarded = t.duplicates;
  }
