type kind = Logical | Monotonic

type t = Logical_clock of { mutable ticks : int } | Monotonic_clock

let logical () = Logical_clock { ticks = 0 }
let monotonic = Monotonic_clock
let of_kind = function Logical -> logical () | Monotonic -> monotonic
let kind = function Logical_clock _ -> Logical | Monotonic_clock -> Monotonic
let kind_to_string = function Logical -> "logical" | Monotonic -> "monotonic"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "logical" | "tick" -> Some Logical
  | "monotonic" | "mono" | "wall" -> Some Monotonic
  | _ -> None

let kind_of_env () =
  match Sys.getenv_opt "ELMO_TRACE_CLOCK" with
  | None -> Logical
  | Some s -> ( match kind_of_string s with Some k -> k | None -> Logical)

let now_us = function
  | Logical_clock c ->
      c.ticks <- c.ticks + 1;
      float_of_int c.ticks
  | Monotonic_clock ->
      (* The one sanctioned wall-clock site of the observability layer: every
         traced duration flows through here, and only when the user opted in
         via ELMO_TRACE_CLOCK=mono. Timestamps never feed simulation state. *)
      Unix.gettimeofday () *. 1e6 (* elmo-lint: allow determinism — single opt-in wall-clock source (ELMO_TRACE_CLOCK=mono); timestamps never feed simulation state *)

let shard = function Logical_clock _ -> logical () | Monotonic_clock -> Monotonic_clock
