(** Uniform run provenance stamped into benchmark JSON files and experiment
    output: git revision, core count, domain count, seed, parameter string,
    and the trace-clock kind in effect. One shared definition replaces the
    per-benchmark ad-hoc stamping that used to live in [bench/main.ml]. *)

type t = {
  git_rev : string;  (** short HEAD revision, or ["unknown"] outside a repo *)
  cores : int;  (** [Domain.recommended_domain_count ()] *)
  domains : int;
  seed : int option;
  params : string option;  (** rendered [Params.pp], if relevant *)
  clock : string;  (** {!Clock.kind_of_env} at capture time *)
}

val capture : ?seed:int -> ?params:string -> ?domains:int -> unit -> t
(** [domains] defaults to 1. Runs [git rev-parse] once per call. *)

val to_json : t -> string
(** One JSON object, e.g.
    [{"git_rev":"3c675f6","cores":8,"domains":4,"seed":5,"params":null,"clock":"logical"}]. *)

val pp : Format.formatter -> t -> unit
