type t = {
  active : bool;
  clock : Clock.t;
  metrics : Metrics.t option;
  trace : Trace.t option;
  tag : string;
}

let disabled =
  { active = false; clock = Clock.monotonic; metrics = None; trace = None; tag = "" }

let make ?metrics ?trace ~clock () =
  {
    active = (match (metrics, trace) with None, None -> false | _ -> true);
    clock;
    metrics;
    trace;
    tag = "";
  }

(* Ambient context lives in domain-local storage: each domain reads and
   writes only its own slot, so instrumented code needs no locking and the
   domain-safety rule holds without suppression — there is no top-level
   mutable shared between domains, only this key. *)
let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> disabled)

let current () = Domain.DLS.get key
let install c = Domain.DLS.set key c
let active c = c.active
let metrics c = c.metrics
let trace c = c.trace
let clock c = c.clock
let tag c = c.tag

let shard ~index parent =
  {
    active = (match parent.metrics with None -> false | Some _ -> true);
    clock = Clock.shard parent.clock;
    metrics =
      (match parent.metrics with
      | None -> None
      | Some m -> Some (Metrics.shard m));
    trace = None;
    tag = "d" ^ string_of_int index;
  }

let worker_hooks () =
  let parent = current () in
  if not parent.active then ((fun _ -> ()), fun () -> ())
  else
    ( (fun i -> install (shard ~index:i parent)),
      fun () ->
        (match (parent.metrics, (current ()).metrics) with
        | Some pm, Some sh -> Metrics.join pm sh
        | _ -> ());
        install disabled )
