type t = {
  git_rev : string;
  cores : int;
  domains : int;
  seed : int option;
  params : string option;
  clock : string;
}

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let capture ?seed ?params ?(domains = 1) () =
  {
    git_rev = git_rev ();
    cores = Domain.recommended_domain_count ();
    domains;
    seed;
    params;
    clock = Clock.kind_to_string (Clock.kind_of_env ());
  }

let to_json t =
  Printf.sprintf
    "{\"git_rev\":%s,\"cores\":%d,\"domains\":%d,\"seed\":%s,\"params\":%s,\"clock\":%s}"
    (Jsonx.string t.git_rev) t.cores t.domains
    (match t.seed with Some s -> string_of_int s | None -> "null")
    (match t.params with Some p -> Jsonx.string p | None -> "null")
    (Jsonx.string t.clock)

let pp ppf t =
  Format.fprintf ppf "rev=%s cores=%d domains=%d%s%s clock=%s" t.git_rev
    t.cores t.domains
    (match t.seed with Some s -> Printf.sprintf " seed=%d" s | None -> "")
    (match t.params with Some p -> " params=[" ^ p ^ "]" | None -> "")
    t.clock
