(** Tiny JSON fragment helpers shared by the trace/metrics emitters. No JSON
    library is vendored: the observability layer only ever {e writes} JSON,
    and the two exporters need nothing beyond escaped strings and fixed-width
    floats (fixed formatting keeps logical-clock traces byte-stable). *)

val string : string -> string
(** JSON string literal, quotes included; escapes quotes, backslashes and
    control characters. *)

val float : float -> string
(** Fixed [%.3f] rendering; NaN becomes [0.0] and infinities clamp to
    [±1e308] so output is always valid JSON. *)
