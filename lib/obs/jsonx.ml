let string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let float f =
  if Float.is_nan f then "0.0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.3f" f
