(** Span buffer and exporters.

    Events are appended to an in-memory buffer as one JSON object per line
    (JSONL), already in Chrome [trace_event] shape: ["X"] complete events with
    [name]/[ts]/[dur]/[args], plus ["i"] instants. {!to_chrome} wraps the
    lines into [{"traceEvents":[...]}] which loads directly in
    [chrome://tracing] and Perfetto.

    A trace is owned by the domain that installed it: pool-worker shard
    contexts carry no trace, so events are emitted in completion order by one
    domain only — under the logical clock two same-seed runs produce
    byte-identical JSONL. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type t

val create : clock:Clock.t -> unit -> t
val clock : t -> Clock.t
val event_count : t -> int

val complete : t -> name:string -> ts:float -> dur:float -> attrs:(string * attr) list -> unit
(** Append a complete ("X") span event; timestamps come from the caller so a
    span's clock reads bracket its body exactly (see [Obs.with_span]). *)

val instant : t -> ?attrs:(string * attr) list -> string -> unit
(** Append an instant ("i") event stamped with the trace's own clock. *)

val to_jsonl : t -> string
val to_chrome : t -> string
val chrome_of_jsonl : string -> string
val write_jsonl : t -> string -> unit
val write_chrome : t -> string -> unit
