(** Injectable time source for the observability layer.

    The default is a {e logical} clock: a per-clock tick counter bumped on
    every read, so span timestamps and durations count clock reads — fully
    deterministic, which keeps traced runs byte-identical across repeats and
    lint-clean (no wall-clock reads). The {e monotonic} clock reads real time
    through the single sanctioned [Unix.gettimeofday] site and is selected
    explicitly with [ELMO_TRACE_CLOCK=mono] when profiling wall time. *)

type kind = Logical | Monotonic

type t

val logical : unit -> t
(** A fresh logical clock starting at tick 0. *)

val monotonic : t
(** The wall clock (stateless; all monotonic clocks share the timebase). *)

val of_kind : kind -> t
val kind : t -> kind
val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Accepts ["logical"]/["tick"] and ["monotonic"]/["mono"]/["wall"]. *)

val kind_of_env : unit -> kind
(** Reads [ELMO_TRACE_CLOCK]; unset or unrecognized values mean [Logical]. *)

val now_us : t -> float
(** Current time in microseconds. On a logical clock this is the tick count
    {e after} bumping it, so a span's duration equals the number of clock
    reads nested inside it. *)

val shard : t -> t
(** Clock for a worker-domain shard: logical clocks get a fresh private
    counter (tick deltas within one chunk stay deterministic and no
    cross-domain mutation occurs); the monotonic clock is shared as-is. *)
