type attr = Trace.attr = Int of int | Float of float | Str of string | Bool of bool

let current = Ctx.current
let install = Ctx.install

(* The probes below are annotated zero-alloc for the disabled case: with no
   metrics sink attached they cost one domain-local read and a branch, so
   hot paths can leave them in unconditionally. The metrics-enabled
   branches may allocate (cell lookup can create the cell) and carry
   reasoned suppressions. *)

(* elmo-lint: zero-alloc *)
let enabled () = (Ctx.current ()).Ctx.active

let with_span ?(attrs = []) name f =
  let c = Ctx.current () in
  if not c.Ctx.active then f ()
  else begin
    let t0 = Clock.now_us c.Ctx.clock in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_us c.Ctx.clock in
        (match c.Ctx.trace with
        | Some tr -> Trace.complete tr ~name ~ts:t0 ~dur:(t1 -. t0) ~attrs
        | None -> ());
        match c.Ctx.metrics with
        | Some m -> Metrics.observe m ("span." ^ name ^ "_us") (t1 -. t0)
        | None -> ())
      f
  end

(* elmo-lint: zero-alloc *)
let incr ?(n = 1) name =
  match (Ctx.current ()).Ctx.metrics with
  | Some m ->
      (* elmo-lint: allow zero-alloc — metrics-enabled path: cell lookup may create the cell *)
      Metrics.incr m ~n name
  | None -> ()

let incr_indexed ?(n = 1) name idx =
  match (Ctx.current ()).Ctx.metrics with
  | Some m -> Metrics.incr m ~n (Printf.sprintf "%s.%d" name idx)
  | None -> ()

(* elmo-lint: zero-alloc *)
let observe name v =
  match (Ctx.current ()).Ctx.metrics with
  | Some m ->
      (* elmo-lint: allow zero-alloc — metrics-enabled path: cell lookup may create the cell *)
      Metrics.observe m name v
  | None -> ()

(* elmo-lint: zero-alloc *)
let gauge name v =
  match (Ctx.current ()).Ctx.metrics with
  | Some m ->
      (* elmo-lint: allow zero-alloc — metrics-enabled path: cell lookup may create the cell *)
      Metrics.gauge m name v
  | None -> ()

let instant ?(attrs = []) name =
  match (Ctx.current ()).Ctx.trace with
  | Some tr -> Trace.instant tr ~attrs name
  | None -> ()

let worker_hooks = Ctx.worker_hooks

(* Chunk queue/run latencies mix timestamps taken on the submitting and the
   executing domain, which is only meaningful on the shared wall clock —
   under the logical default the probe is off and traced runs stay
   deterministic. *)
let pool_probe () =
  let c = Ctx.current () in
  match c.Ctx.metrics with
  | None -> None
  | Some _ -> (
      match Clock.kind c.Ctx.clock with
      | Clock.Logical -> None
      | Clock.Monotonic ->
          let metric cx s =
            match Ctx.tag cx with
            | "" -> "domain_pool." ^ s
            | tag -> "domain_pool." ^ tag ^ "." ^ s
          in
          Some
            {
              Domain_pool.prb_now =
                (fun () -> Clock.now_us (Ctx.current ()).Ctx.clock);
              prb_chunk =
                (fun ~queue_us ~run_us ~items ->
                  let cx = Ctx.current () in
                  match cx.Ctx.metrics with
                  | Some m ->
                      Metrics.observe m (metric cx "chunk_queue_us") queue_us;
                      Metrics.observe m (metric cx "chunk_run_us") run_us;
                      Metrics.incr m ~n:items (metric cx "items")
                  | None -> ());
            })
