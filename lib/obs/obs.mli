(** Instrumentation facade over the ambient {!Ctx}. This is the only module
    instrumented code needs: every probe reads the calling domain's context
    and is a no-op (one DLS read + branch) when observability is disabled —
    simulation output is bit-identical with tracing on or off because probes
    only ever read state the simulation already computed. *)

type attr = Trace.attr = Int of int | Float of float | Str of string | Bool of bool

val current : unit -> Ctx.t
val install : Ctx.t -> unit
val enabled : unit -> bool

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span: one clock read before, one
    after; the span goes to the trace (if any) and its duration into the
    ["span.<name>_us"] histogram (if metrics are on). The span is emitted
    even if [f] raises. Disabled: exactly [f ()]. *)

val incr : ?n:int -> string -> unit

val incr_indexed : ?n:int -> string -> int -> unit
(** [incr_indexed name i] bumps the counter ["<name>.<i>"] — the idiom for
    per-shard or per-domain counter families (e.g. ["shard.committed.3"]).
    The composed name is only allocated when metrics are on. *)

val observe : string -> float -> unit
val gauge : string -> float -> unit
val instant : ?attrs:(string * attr) list -> string -> unit

val worker_hooks : unit -> (int -> unit) * (unit -> unit)
(** Alias of {!Ctx.worker_hooks}, for [Domain_pool.create]'s
    [?worker_init]/[?worker_exit]. *)

val pool_probe : unit -> Domain_pool.probe option
(** Chunk queue/run-time probe for [Domain_pool.map], recording per-domain
    ["domain_pool.d<i>.chunk_{queue,run}_us"] histograms. [None] unless
    metrics are on {e and} the clock is monotonic — queue latency spans two
    domains, which logical ticks cannot measure deterministically. *)
