type attr = Int of int | Float of float | Str of string | Bool of bool

type t = { clock : Clock.t; buf : Buffer.t; mutable n_events : int }

let create ~clock () = { clock; buf = Buffer.create 4096; n_events = 0 }
let clock t = t.clock
let event_count t = t.n_events

let add_attrs buf attrs =
  match attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Jsonx.string k);
          Buffer.add_char buf ':';
          Buffer.add_string buf
            (match v with
            | Int n -> string_of_int n
            | Float f -> Jsonx.float f
            | Str s -> Jsonx.string s
            | Bool b -> if b then "true" else "false"))
        attrs;
      Buffer.add_char buf '}'

let complete t ~name ~ts ~dur ~attrs =
  t.n_events <- t.n_events + 1;
  Buffer.add_string t.buf "{\"ph\":\"X\",\"cat\":\"elmo\",\"name\":";
  Buffer.add_string t.buf (Jsonx.string name);
  Buffer.add_string t.buf
    (Printf.sprintf ",\"pid\":0,\"tid\":0,\"ts\":%s,\"dur\":%s" (Jsonx.float ts)
       (Jsonx.float dur));
  add_attrs t.buf attrs;
  Buffer.add_string t.buf "}\n"

let instant t ?(attrs = []) name =
  t.n_events <- t.n_events + 1;
  Buffer.add_string t.buf "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"elmo\",\"name\":";
  Buffer.add_string t.buf (Jsonx.string name);
  Buffer.add_string t.buf
    (Printf.sprintf ",\"pid\":0,\"tid\":0,\"ts\":%s"
       (Jsonx.float (Clock.now_us t.clock)));
  add_attrs t.buf attrs;
  Buffer.add_string t.buf "}\n"

let to_jsonl t = Buffer.contents t.buf

let chrome_of_jsonl jsonl =
  let lines =
    String.split_on_char '\n' jsonl
    |> List.filter (fun l -> String.length l > 0)
  in
  "{\"traceEvents\":[" ^ String.concat "," lines ^ "]}\n"

let to_chrome t = chrome_of_jsonl (to_jsonl t)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_jsonl t path = write_file path (to_jsonl t)
let write_chrome t path = write_file path (to_chrome t)
