let num_buckets = 64

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type cell = Counter_c of int ref | Gauge_c of float ref | Hist_c of hist

type t = {
  cells : (string, cell) Hashtbl.t;
  lock : Mutex.t;
  mutable shards : t list;
}

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_summary

let create () =
  { cells = Hashtbl.create 64; lock = Mutex.create (); shards = [] }

let shard parent =
  let s = create () in
  Mutex.lock parent.lock;
  parent.shards <- s :: parent.shards;
  Mutex.unlock parent.lock;
  s

let new_hist () =
  {
    h_count = 0;
    h_sum = 0.0;
    h_min = infinity;
    h_max = neg_infinity;
    h_buckets = Array.make num_buckets 0;
  }

let copy_hist h = { h with h_buckets = Array.copy h.h_buckets }

let cell t name mk =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
      let c = mk () in
      Hashtbl.add t.cells name c;
      c

let incr ?(n = 1) t name =
  match cell t name (fun () -> Counter_c (ref 0)) with
  | Counter_c r -> r := !r + n
  | Gauge_c _ | Hist_c _ ->
      invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")

let gauge t name v =
  match cell t name (fun () -> Gauge_c (ref v)) with
  | Gauge_c r -> r := v
  | Counter_c _ | Hist_c _ ->
      invalid_arg ("Metrics.gauge: " ^ name ^ " is not a gauge")

(* Log2 buckets: bucket 0 holds values <= 1 (and NaN); bucket e >= 1 holds
   roughly [2^(e-1), 2^e). 64 buckets cover any duration we can measure. *)
let bucket_of v =
  if not (v > 1.0) then 0 else min (num_buckets - 1) (snd (Float.frexp v))

let representative i =
  if i = 0 then 1.0 else Float.ldexp 1.0 i *. 0.75 (* arithmetic bucket mid *)

let observe t name v =
  match cell t name (fun () -> Hist_c (new_hist ())) with
  | Hist_c h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let b = bucket_of v in
      h.h_buckets.(b) <- h.h_buckets.(b) + 1
  | Counter_c _ | Gauge_c _ ->
      invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")

let merge_cell ~into name src =
  match (Hashtbl.find_opt into.cells name, src) with
  | None, Counter_c r -> Hashtbl.add into.cells name (Counter_c (ref !r))
  | None, Gauge_c r -> Hashtbl.add into.cells name (Gauge_c (ref !r))
  | None, Hist_c h -> Hashtbl.add into.cells name (Hist_c (copy_hist h))
  | Some (Counter_c dst), Counter_c s -> dst := !dst + !s
  | Some (Gauge_c dst), Gauge_c s -> if !s > !dst then dst := !s
  | Some (Hist_c dst), Hist_c s ->
      dst.h_count <- dst.h_count + s.h_count;
      dst.h_sum <- dst.h_sum +. s.h_sum;
      if s.h_min < dst.h_min then dst.h_min <- s.h_min;
      if s.h_max > dst.h_max then dst.h_max <- s.h_max;
      Array.iteri
        (fun i c -> dst.h_buckets.(i) <- dst.h_buckets.(i) + c)
        s.h_buckets
  | Some _, _ -> invalid_arg ("Metrics.merge: kind mismatch for " ^ name)

let join parent s =
  Mutex.lock parent.lock;
  Hashtbl.iter (fun name c -> merge_cell ~into:parent name c) s.cells;
  parent.shards <- List.filter (fun x -> not (x == s)) parent.shards;
  Mutex.unlock parent.lock

(* Quantiles reuse the repo's Stats interpolation: expand the buckets into at
   most [cap] representative samples (cumulative rounding, so the expansion
   is exact in total count and ascending by construction) and hand the sorted
   array to Stats.percentile. *)
let summary_of_hist h =
  if h.h_count = 0 then
    { count = 0; sum = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0 }
  else begin
    let cap = 4096 in
    let m = if h.h_count < cap then h.h_count else cap in
    let vals = Array.make m 0.0 in
    let pushed = ref 0 and cum = ref 0 in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          cum := !cum + c;
          let target = !cum * m / h.h_count in
          let rep = Float.min h.h_max (Float.max h.h_min (representative i)) in
          while !pushed < target do
            vals.(!pushed) <- rep;
            pushed := !pushed + 1
          done
        end)
      h.h_buckets;
    {
      count = h.h_count;
      sum = h.h_sum;
      min = h.h_min;
      max = h.h_max;
      p50 = Stats.percentile vals 0.5;
      p95 = Stats.percentile vals 0.95;
      p99 = Stats.percentile vals 0.99;
    }
  end

let merged t =
  let acc = create () in
  Mutex.lock t.lock;
  let shards = t.shards in
  Mutex.unlock t.lock;
  Hashtbl.iter (fun name c -> merge_cell ~into:acc name c) t.cells;
  List.iter
    (fun s -> Hashtbl.iter (fun name c -> merge_cell ~into:acc name c) s.cells)
    shards;
  acc

let value_of_cell = function
  | Counter_c r -> Counter !r
  | Gauge_c r -> Gauge !r
  | Hist_c h -> Histogram (summary_of_hist h)

let dump t =
  Hashtbl.fold (fun name c l -> (name, value_of_cell c) :: l) (merged t).cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Jsonx.string name);
      Buffer.add_char b ':';
      match v with
      | Counter n -> Buffer.add_string b (string_of_int n)
      | Gauge g -> Buffer.add_string b (Jsonx.float g)
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf
               "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
               h.count (Jsonx.float h.sum) (Jsonx.float h.min)
               (Jsonx.float h.max) (Jsonx.float h.p50) (Jsonx.float h.p95)
               (Jsonx.float h.p99)))
    (dump t);
  Buffer.add_char b '}';
  Buffer.contents b

let bucket_bound i = if i <= 0 then 1.0 else Float.ldexp 1.0 i

let dump_buckets t name =
  match Hashtbl.find_opt (merged t).cells name with
  | Some (Hist_c h) ->
      Some (Array.mapi (fun i c -> (bucket_bound i, c)) h.h_buckets)
  | Some (Counter_c _ | Gauge_c _) | None -> None

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names just
   need the dots (and any other punctuation) folded to underscores. *)
let sanitize name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let expose t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let n = "elmo_" ^ sanitize name in
      match v with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n c)
      | Gauge g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b (Printf.sprintf "%s %s\n" n (Jsonx.float g))
      | Histogram h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
          (match dump_buckets t name with
          | None -> ()
          | Some buckets ->
              let cum = ref 0 in
              Array.iter
                (fun (bound, c) ->
                  if c > 0 then begin
                    cum := !cum + c;
                    Buffer.add_string b
                      (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n
                         (Jsonx.float bound) !cum)
                  end)
                buckets);
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.count);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" n (Jsonx.float h.sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.count))
    (dump t);
  Buffer.contents b

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%-46s %d@\n" name n
      | Gauge g -> Format.fprintf ppf "%-46s %.3f@\n" name g
      | Histogram h ->
          Format.fprintf ppf
            "%-46s n=%d sum=%.1f min=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f@\n"
            name h.count h.sum h.min h.p50 h.p95 h.p99 h.max)
    (dump t)
