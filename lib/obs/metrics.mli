(** Domain-safe metrics registry: counters, gauges, and log2-bucketed
    histograms keyed by (primitive) string names.

    Concurrency model: a registry value is owned by the domain that created
    it. Worker domains never touch the parent's cells — each one registers a
    private {!shard} (the only cross-domain operations, {!shard} and {!join},
    take the parent's lock) and records into it without synchronization. At
    pool shutdown the shard is {!join}ed back: counters and histogram buckets
    add, min/max widen, gauges keep the max — all commutative, so a merged
    {!dump} is deterministic regardless of which worker did which chunk.

    Histogram quantiles reuse {!Stats.percentile}: the 64 log2 buckets are
    expanded into at most 4096 representative samples (exact when the count
    is below the cap, proportional otherwise) — p50/p95/p99 are therefore
    bucket-resolution approximations of the true quantiles. *)

type t

type hist_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type value = Counter of int | Gauge of float | Histogram of hist_summary

val create : unit -> t

val shard : t -> t
(** A fresh registry registered as a shard of the parent; safe to call from
    any domain. Its cells are merged into every parent {!dump} and folded in
    permanently by {!join}. *)

val join : t -> t -> unit
(** [join parent shard] merges the shard's cells into the parent and
    unregisters it. Safe to call concurrently from several exiting workers. *)

val incr : ?n:int -> t -> string -> unit
(** Add [n] (default 1) to a counter. Raises [Invalid_argument] if the name
    is already bound to a different metric kind (same for the others). *)

val gauge : t -> string -> float -> unit
(** Set a gauge (last write wins within a registry; max wins across shards). *)

val observe : t -> string -> float -> unit
(** Record a sample into a histogram. *)

val dump : t -> (string * value) list
(** Merged view (registry + live shards), sorted by name. Call it when the
    workers are quiescent — e.g. after [Domain_pool.with_pool] returns. *)

val to_json : t -> string
(** One JSON object: counters as ints, gauges as floats, histograms as
    [{"count":..,"sum":..,"min":..,"max":..,"p50":..,"p95":..,"p99":..}]. *)

val bucket_bound : int -> float
(** Upper bound of log2 bucket [i]: 1.0 for bucket 0, [2^i] for [i >= 1].
    Bucket 0 holds samples [<= 1.0] (inclusive, and NaN); bucket [i >= 1]
    holds [(2^(i-1), 2^i)] with one wrinkle inherited from [Float.frexp]:
    an exact power of two [2^e] (for [e >= 1]) lands in bucket [e + 1], so
    the bound is exclusive there too. *)

val dump_buckets : t -> string -> (float * int) array option
(** Raw merged bucket counts of histogram [name] as
    [(bucket_bound i, count)] per bucket, or [None] if the name is unbound
    or not a histogram. Lets tests and exposition see the distribution, not
    just the p50/p95/p99 summary. *)

val expose : t -> string
(** Prometheus text-format exposition of the merged view: each metric as
    [elmo_<name>] (punctuation folded to [_]) with a [# TYPE] line;
    histograms render cumulative [_bucket{le="..."}] lines (empty buckets
    elided) plus [_sum]/[_count]. *)

val pp : Format.formatter -> t -> unit
