(** Ambient observability context, one per domain.

    The context bundles the clock and the (optional) metrics/trace sinks and
    lives in [Domain.DLS] — each domain owns its slot, so instrumented code
    reads it without locks and without any shared top-level mutable state
    (the domain-safety lint rule passes with no suppressions). The default is
    {!disabled}: every probe in the hot path then costs one DLS read and a
    branch. *)

type t = {
  active : bool;  (** precomputed [metrics <> None || trace <> None] *)
  clock : Clock.t;
  metrics : Metrics.t option;
  trace : Trace.t option;
  tag : string;  (** [""] on the installing domain, ["d<i>"] on pool worker [i] *)
}

val disabled : t

val make : ?metrics:Metrics.t -> ?trace:Trace.t -> clock:Clock.t -> unit -> t

val current : unit -> t
val install : t -> unit
(** Set the calling domain's context (pass {!disabled} to turn it off). *)

val active : t -> bool
val metrics : t -> Metrics.t option
val trace : t -> Trace.t option
val clock : t -> Clock.t
val tag : t -> string

val shard : index:int -> t -> t
(** Worker-domain view of a parent context: a {!Metrics.shard}, a
    {!Clock.shard} (fresh logical counter), no trace (spans stay
    single-domain for byte-stable output), tag ["d<index>"]. *)

val worker_hooks : unit -> (int -> unit) * (unit -> unit)
(** [(init, exit)] closures for [Domain_pool.create ~worker_init ~worker_exit]
    derived from the {e caller's} current context: [init i] installs a shard
    context on the worker, [exit] joins its metrics back into the parent.
    No-ops when the current context is inactive. *)
