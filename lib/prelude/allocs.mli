(** Runtime allocation probe for hot paths.

    The [zero-alloc] lint rule proves allocation-freedom statically over the
    typed AST; this module cross-checks the claim at runtime with
    [Gc.minor_words] deltas, closing the gap left by the checker's trusted
    base (whitelisted externs, reasoned suppressions). The hot-path bench
    and the [test zero-alloc] suite both drive it. *)

type report = {
  total_words : float;
      (** minor words allocated across all measured events (warm-up
          excluded, probe overhead subtracted) *)
  per_event : float;  (** [total_words /. events] *)
  first_alloc : (int * int) option;
      (** on violation: [(event_index, words)] of the first measured event
          that allocated, from a second per-event diagnostic pass; [None]
          when the run was clean or the violation did not reproduce
          per-event *)
}

val probe : warmup:int -> events:int -> (int -> unit) -> report
(** [probe ~warmup ~events f] calls [f i] for [i = 0 .. warmup - 1]
    unmeasured (letting one-time lazy work — buffer growth, cell creation —
    happen off the books), then measures the total [Gc.minor_words] delta
    over [f warmup .. f (warmup + events - 1)]. The cost of reading the
    counter itself is calibrated by timing back-to-back reads and
    subtracted. If the measured span allocated, a second pass re-runs the
    measured events one by one to pin the first allocating event index in
    [first_alloc].

    The function must be effectively idempotent across the extra diagnostic
    pass (membership churn loops that join and leave in pairs are; one-shot
    state machines are not). Raises [Invalid_argument] on negative
    [warmup] or non-positive [events]. *)
