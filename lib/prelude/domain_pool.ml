type task = Run of (unit -> unit) | Quit

type probe = {
  prb_now : unit -> float;
  prb_chunk : queue_us:float -> run_us:float -> items:int -> unit;
}

type t = {
  size : int;
  queue : task Queue.t;
  lock : Mutex.t;
  work : Condition.t;
  mutable workers : unit Domain.t list;
  mutable shut : bool;
}

let rec worker t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue do
    Condition.wait t.work t.lock
  done;
  let task = Queue.pop t.queue in
  Mutex.unlock t.lock;
  match task with
  | Quit -> ()
  | Run f ->
      f ();
      worker t

let create ?(worker_init = fun (_ : int) -> ()) ?(worker_exit = fun () -> ())
    n =
  if n < 1 then invalid_arg "Domain_pool.create: need at least one domain";
  let t =
    {
      size = n;
      queue = Queue.create ();
      lock = Mutex.create ();
      work = Condition.create ();
      workers = [];
      shut = false;
    }
  in
  t.workers <-
    List.init n (fun i ->
        Domain.spawn (fun () ->
            worker_init i;
            Fun.protect ~finally:worker_exit (fun () -> worker t)));
  t

let size t = t.size

let submit t f =
  Mutex.lock t.lock;
  if t.shut then begin
    Mutex.unlock t.lock;
    invalid_arg "Domain_pool: pool is shut down"
  end;
  Queue.push (Run f) t.queue;
  Condition.signal t.work;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  if t.shut then Mutex.unlock t.lock
  else begin
    t.shut <- true;
    List.iter (fun _ -> Queue.push Quit t.queue) t.workers;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let map ?chunk ?probe t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with
      | Some c ->
          if c < 1 then invalid_arg "Domain_pool.map: chunk must be positive";
          c
      | None ->
          (* ~4 chunks per worker: enough slack to absorb uneven task costs
             without drowning in queue traffic. *)
          max 1 ((n + (4 * t.size) - 1) / (4 * t.size))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    let lock = Mutex.create () in
    let finished = Condition.create () in
    let remaining = ref nchunks in
    (* Keep the lowest-index failure so the raised exception is
       deterministic regardless of worker interleaving. *)
    let failure = ref None in
    for c = 0 to nchunks - 1 do
      let lo = c * chunk in
      let hi = min n (lo + chunk) - 1 in
      (* Enqueue timestamp is taken on the submitting domain, start/stop on
         the worker: the probe owner must use a clock both share. *)
      let enq = match probe with Some p -> p.prb_now () | None -> 0.0 in
      submit t (fun () ->
          let t0 = match probe with Some p -> p.prb_now () | None -> 0.0 in
          (try
             for i = lo to hi do
               results.(i) <- Some (f arr.(i))
             done
           with e ->
             Mutex.lock lock;
             (match !failure with
             | Some (c0, _) when c0 <= c -> ()
             | Some _ | None -> failure := Some (c, e));
             Mutex.unlock lock);
          (match probe with
          | Some p ->
              p.prb_chunk ~queue_us:(t0 -. enq)
                ~run_us:(p.prb_now () -. t0)
                ~items:(hi - lo + 1)
          | None -> ());
          Mutex.lock lock;
          decr remaining;
          if !remaining = 0 then Condition.signal finished;
          Mutex.unlock lock)
    done;
    Mutex.lock lock;
    while !remaining > 0 do
      Condition.wait finished lock
    done;
    Mutex.unlock lock;
    (match !failure with Some (_, e) -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let run_workers t f =
  let n = t.size in
  let lock = Mutex.create () in
  let finished = Condition.create () in
  let remaining = ref n in
  (* Lowest-index failure wins, as in [map], so the raised exception is
     deterministic regardless of worker interleaving. *)
  let failure = ref None in
  for w = 0 to n - 1 do
    submit t (fun () ->
        (try f w
         with e ->
           Mutex.lock lock;
           (match !failure with
           | Some (w0, _) when w0 <= w -> ()
           | Some _ | None -> failure := Some (w, e));
           Mutex.unlock lock);
        Mutex.lock lock;
        decr remaining;
        if !remaining = 0 then Condition.signal finished;
        Mutex.unlock lock)
  done;
  Mutex.lock lock;
  while !remaining > 0 do
    Condition.wait finished lock
  done;
  Mutex.unlock lock;
  match !failure with Some (_, e) -> raise e | None -> ()

let with_pool ?worker_init ?worker_exit n f =
  let t = create ?worker_init ?worker_exit n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
