(* One shared home for worker-domain count selection, so every entry point
   (bench targets, elmo-sim, experiments) parses ELMO_DOMAINS and clamps the
   request the same way. *)

let recommended () = Domain.recommended_domain_count ()

(* Warn at most once per process: the benches sweep domains ∈ {1,2,4,8} and
   would otherwise repeat the same line per run. An [Atomic] rather than a
   [ref] so the helper stays domain-safe wherever it ends up called from. *)
let warned = Atomic.make false

let clamp n =
  let n = if n < 1 then 1 else n in
  let cores = recommended () in
  if n > cores && Atomic.compare_and_set warned false true then
    Format.eprintf
      "elmo: requested %d worker domains but this machine recommends %d \
       (Domain.recommended_domain_count); extra domains only add scheduling \
       overhead@."
      n cores;
  n

let from_env default =
  match Sys.getenv_opt "ELMO_DOMAINS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> clamp n
      | Some _ | None -> clamp default)
  | None -> clamp default
