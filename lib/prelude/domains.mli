(** Worker-domain count selection, shared by every entry point.

    Exists so [bench/main.ml], [bin/elmo_sim.ml] and the experiment configs
    agree on how [ELMO_DOMAINS] is parsed and how out-of-range requests are
    handled, instead of each keeping its own copy. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val clamp : int -> int
(** [clamp n] is [max 1 n]; additionally prints a warning on stderr — once
    per process, not once per call — when [n] exceeds
    {!recommended}[ ()], since extra domains beyond the core count only add
    scheduling overhead. *)

val from_env : int -> int
(** [from_env default] reads [ELMO_DOMAINS] (a positive integer); a missing
    or malformed value falls back to [default]. The result goes through
    {!clamp}, so requesting more domains than the machine has cores warns
    once. *)
