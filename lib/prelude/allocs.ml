type report = {
  total_words : float;
  per_event : float;
  first_alloc : (int * int) option;
}

(* Reading [Gc.minor_words] itself allocates (the result is a boxed float),
   so a clean measured span still shows the cost of the closing read.
   Calibrate that cost with a back-to-back read pair and subtract it. *)
let counter_overhead () =
  let a = Gc.minor_words () in
  let b = Gc.minor_words () in
  b -. a

let probe ~warmup ~events f =
  if warmup < 0 then invalid_arg "Allocs.probe: warmup must be non-negative"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if events <= 0 then invalid_arg "Allocs.probe: events must be positive"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  for i = 0 to warmup - 1 do
    f i
  done;
  let overhead = counter_overhead () in
  let t0 = Gc.minor_words () in
  for i = warmup to warmup + events - 1 do
    f i
  done;
  let t1 = Gc.minor_words () in
  let total = Float.max 0.0 (t1 -. t0 -. overhead) in
  let first_alloc =
    if total <= 0.0 then None
    else begin
      (* The span allocated: re-run the measured events one by one to name
         the first offender. Events are assumed repeatable (churn loops
         that join/leave in pairs are). *)
      let found = ref None in
      let scanning = ref true in
      let i = ref warmup in
      while !scanning && !i < warmup + events do
        let a = Gc.minor_words () in
        f !i;
        let b = Gc.minor_words () in
        let words = b -. a -. overhead in
        if words > 0.0 then begin
          found := Some (!i - warmup, int_of_float words);
          scanning := false
        end;
        incr i
      done;
      !found
    end
  in
  {
    total_words = total;
    per_event = total /. float_of_int events;
    first_alloc;
  }
