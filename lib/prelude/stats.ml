type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let zero_summary =
  {
    count = 0;
    mean = 0.0;
    stddev = 0.0;
    min = 0.0;
    max = 0.0;
    p50 = 0.0;
    p95 = 0.0;
    p99 = 0.0;
  }

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if q <= 0.0 then sorted.(0)
  else if q >= 1.0 then sorted.(n - 1)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let total arr = Array.fold_left ( +. ) 0.0 arr

let mean arr =
  if Array.length arr = 0 then 0.0
  else total arr /. float_of_int (Array.length arr)

let summarize arr =
  let n = Array.length arr in
  if n = 0 then zero_summary
  else begin
    let sorted = Array.copy arr in
    Array.sort compare sorted;
    let m = mean arr in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 arr
      /. float_of_int n
    in
    {
      count = n;
      mean = m;
      stddev = sqrt var;
      min = sorted.(0);
      max = sorted.(n - 1);
      p50 = percentile sorted 0.5;
      p95 = percentile sorted 0.95;
      p99 = percentile sorted 0.99;
    }
  end

let of_ints arr = Array.map float_of_int arr

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max

module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable max : float;
    mutable min : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; max = neg_infinity; min = infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x > t.max then t.max <- x;
    if x < t.min then t.min <- x

  let count t = t.n
  let mean t = t.mean

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int t.n)

  let max t = t.max
  let min t = t.min
end
