(** Fixed-size reusable pool of worker domains (OCaml 5 [Domain] + [Mutex] +
    [Condition]; no dependencies).

    A pool spawns its workers once and feeds them closures through a shared
    queue, so repeated {!map} calls amortize the domain-spawn cost — the
    batch-encoding control plane runs one pool across many batches. Results
    are written by index, so a map's output order never depends on worker
    scheduling. *)

type t

type probe = {
  prb_now : unit -> float;
      (** timestamp source; called on the submitting domain at enqueue and on
          the executing worker around each chunk, so it must read a clock
          those domains share *)
  prb_chunk : queue_us:float -> run_us:float -> items:int -> unit;
      (** called on the worker after each chunk with its queue latency,
          execution time and item count *)
}
(** Observability hook for {!map}: the pool stays dependency-free, the caller
    (e.g. [Elmo_obs.Obs.pool_probe]) supplies the clock and the sink. *)

val create : ?worker_init:(int -> unit) -> ?worker_exit:(unit -> unit) -> int -> t
(** [create n] spawns [n] worker domains ([n >= 1]; raises
    [Invalid_argument] otherwise). Call {!shutdown} when done — live domains
    are a bounded resource.

    [worker_init i] runs first on worker [i] (e.g. installing a per-domain
    observability shard); [worker_exit] runs on the worker just before it
    terminates — even if a submitted closure raised — so per-domain state can
    be merged back exactly once per worker. Both default to no-ops. *)

val size : t -> int

val map : ?chunk:int -> ?probe:probe -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] applies [f] to every element on the pool's workers and
    returns the results in input order. The input is split into [chunk]-size
    slices (default: ~4 chunks per worker). The caller blocks until every
    chunk completes. [f] must not touch the pool. An empty input returns
    [[||]] without touching the workers.

    If one or more applications raise, the exception of the lowest-index
    failing chunk is re-raised in the caller after all chunks have drained
    — deterministic regardless of scheduling — and the pool remains
    usable. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget task. Raises [Invalid_argument] after {!shutdown}. *)

val run_workers : t -> (int -> unit) -> unit
(** [run_workers pool f] submits exactly [size pool] tasks, task [w]
    running [f w], and blocks until all of them complete. Built for
    cooperative schedulers (e.g. the sharded commit loop): each [f w] is a
    long-lived peer that pulls work from shared state, so one task per
    worker slot keeps every domain busy without oversubscribing. Note the
    pool's queue does not pin tasks to domains — a fast worker may execute
    two of the tasks back to back — so [f] must not require that all [n]
    calls run concurrently (a scheduler whose workers only {e help} and
    never {e wait on each other's liveness} is safe). Exceptions follow
    {!map}: the lowest-index failing task's exception is re-raised after
    all tasks drain, and the pool stays usable. *)

val shutdown : t -> unit
(** Drains queued tasks, stops and joins all workers. Idempotent. *)

val with_pool :
  ?worker_init:(int -> unit) -> ?worker_exit:(unit -> unit) -> int ->
  (t -> 'a) -> 'a
(** [with_pool n f] runs [f] with a fresh pool and always shuts it down
    (joining the workers, so every [worker_exit] has completed on return). *)
