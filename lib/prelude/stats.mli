(** Summary statistics over float samples, used by every benchmark harness to
    report the same aggregates the paper does (mean, max, percentiles). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Total: an empty array yields the all-zero summary ([count = 0]) so
    callers aggregating unknown-size sample sets (e.g. the [elmo_obs]
    histograms) need no emptiness guard. Does not mutate the input. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]], linear interpolation;
    [q] outside the range clamps to min/max. The input must already be
    sorted ascending. Empty input yields [0.0]; a singleton yields its sole
    element for every [q]. *)

val mean : float array -> float
(** Total: [0.0] on empty input. *)

val total : float array -> float

val of_ints : int array -> float array

val pp_summary : Format.formatter -> summary -> unit

module Welford : sig
  (** Streaming mean/variance accumulator, O(1) memory. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val max : t -> float
  val min : t -> float
end
