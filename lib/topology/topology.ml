type t = {
  pods : int;
  leaves_per_pod : int;
  spines_per_pod : int;
  hosts_per_leaf : int;
  cores_per_plane : int;
  link_gbps : float;
}

let validate t =
  if t.pods <= 0 then invalid_arg "Topology: pods must be positive";
  if t.leaves_per_pod <= 0 then invalid_arg "Topology: leaves_per_pod must be positive";
  if t.spines_per_pod <= 0 then invalid_arg "Topology: spines_per_pod must be positive";
  if t.hosts_per_leaf <= 0 then invalid_arg "Topology: hosts_per_leaf must be positive";
  if t.cores_per_plane < 0 then invalid_arg "Topology: cores_per_plane must be non-negative";
  if t.pods > 1 && t.cores_per_plane = 0 then
    invalid_arg "Topology: multi-pod topology requires a core plane";
  if not (t.link_gbps > 0.0) then
    invalid_arg "Topology: link_gbps must be positive"

let create ~pods ~leaves_per_pod ~spines_per_pod ~hosts_per_leaf
    ~cores_per_plane =
  let t =
    { pods; leaves_per_pod; spines_per_pod; hosts_per_leaf; cores_per_plane;
      link_gbps = 10.0 }
  in
  validate t;
  t

let with_link_gbps t link_gbps =
  let t = { t with link_gbps } in
  validate t;
  t

let link_gbps t = t.link_gbps

let facebook_fabric () =
  create ~pods:12 ~leaves_per_pod:48 ~spines_per_pod:4 ~hosts_per_leaf:48
    ~cores_per_plane:12

let running_example () =
  create ~pods:4 ~leaves_per_pod:2 ~spines_per_pod:2 ~hosts_per_leaf:8
    ~cores_per_plane:2

let leaf_spine ~leaves ~spines ~hosts_per_leaf =
  create ~pods:1 ~leaves_per_pod:leaves ~spines_per_pod:spines ~hosts_per_leaf
    ~cores_per_plane:0

let num_leaves t = t.pods * t.leaves_per_pod
let num_spines t = t.pods * t.spines_per_pod
let num_cores t = t.spines_per_pod * t.cores_per_plane
let num_hosts t = num_leaves t * t.hosts_per_leaf
let num_switches t = num_leaves t + num_spines t + num_cores t
let is_two_tier t = t.cores_per_plane = 0

let check_host t h =
  if h < 0 || h >= num_hosts t then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Topology: host out of range"

let check_leaf t l =
  if l < 0 || l >= num_leaves t then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Topology: leaf out of range"

let leaf_of_host t h =
  check_host t h;
  h / t.hosts_per_leaf

let pod_of_leaf t l =
  check_leaf t l;
  l / t.leaves_per_pod

let pod_of_host t h = pod_of_leaf t (leaf_of_host t h)

let host_port_on_leaf t h =
  check_host t h;
  h mod t.hosts_per_leaf

let leaf_port_on_spine t l =
  check_leaf t l;
  l mod t.leaves_per_pod

let hosts_of_leaf t l =
  check_leaf t l;
  List.init t.hosts_per_leaf (fun i -> (l * t.hosts_per_leaf) + i)

let leaves_of_pod t p =
  if p < 0 || p >= t.pods then invalid_arg "Topology: pod out of range";
  List.init t.leaves_per_pod (fun i -> (p * t.leaves_per_pod) + i)

let spines_of_pod t p =
  if p < 0 || p >= t.pods then invalid_arg "Topology: pod out of range";
  List.init t.spines_per_pod (fun i -> (p * t.spines_per_pod) + i)

let leaf_downstream_width t = t.hosts_per_leaf
let spine_downstream_width t = t.leaves_per_pod
let core_downstream_width t = t.pods
let leaf_upstream_width t = t.spines_per_pod
let spine_upstream_width t = t.cores_per_plane

(* Top-level recursion (not a local closure) so callers on the zero-alloc
   encode path stay provably allocation-free. *)
let rec bits_needed_loop n bits cap =
  if cap >= n then bits else bits_needed_loop n (bits + 1) (cap * 2)

let bits_needed n = if n <= 1 then 1 else bits_needed_loop n 1 2

let leaf_id_bits t = bits_needed (num_leaves t)
let spine_id_bits t = bits_needed t.pods

(* Durable wire codec. [read] funnels both framing errors and semantic
   violations (a shape [create] would reject) into Byteio.Reader.Corrupt so
   Wire.load can treat the record as torn. *)
let write w t =
  Byteio.Writer.int w t.pods;
  Byteio.Writer.int w t.leaves_per_pod;
  Byteio.Writer.int w t.spines_per_pod;
  Byteio.Writer.int w t.hosts_per_leaf;
  Byteio.Writer.int w t.cores_per_plane;
  Byteio.Writer.float w t.link_gbps

let read r =
  let pods = Byteio.Reader.int r in
  let leaves_per_pod = Byteio.Reader.int r in
  let spines_per_pod = Byteio.Reader.int r in
  let hosts_per_leaf = Byteio.Reader.int r in
  let cores_per_plane = Byteio.Reader.int r in
  let link_gbps = Byteio.Reader.float r in
  match
    with_link_gbps
      (create ~pods ~leaves_per_pod ~spines_per_pod ~hosts_per_leaf
         ~cores_per_plane)
      link_gbps
  with
  | t -> t
  | exception Invalid_argument _ -> raise Byteio.Reader.Corrupt

let pp ppf t =
  Format.fprintf ppf
    "clos(pods=%d, leaves/pod=%d, spines/pod=%d, hosts/leaf=%d, cores/plane=%d; hosts=%d)"
    t.pods t.leaves_per_pod t.spines_per_pod t.hosts_per_leaf t.cores_per_plane
    (num_hosts t)
