(** Multi-rooted Clos datacenter topologies (§2, §3.1 D2).

    The model is the tiered topology the paper evaluates on: pods of leaf and
    spine switches plus a core layer, every leaf connected to every spine of
    its pod, and spine [i] of each pod connected to every core switch of
    plane [i] (a Facebook-Fabric-style multi-rooted tree). A two-tier
    leaf–spine network is the special case [pods = 1, cores_per_plane = 0].

    Identifier conventions (used as p-rule switch identifiers and bitmap
    indices):
    - leaves are numbered globally, [pod * leaves_per_pod + position];
    - spines likewise, [pod * spines_per_pod + position];
    - cores are [plane * cores_per_plane + position];
    - hosts are [leaf * hosts_per_leaf + position].

    Port numbering, which fixes bitmap layouts:
    - a leaf's downstream port [i] reaches its [i]-th host; its upstream port
      [j] reaches pod spine [j];
    - a spine's downstream port [i] reaches the [i]-th leaf of its pod; its
      upstream port [j] reaches the [j]-th core of its plane;
    - a core's (downstream) port [p] reaches pod [p].

    The logical topology (§3.1 D2) collapses each pod's spines into one
    logical spine (identified by the pod number) and all cores into one
    logical core, which is what downstream p-rules address. *)

type t = private {
  pods : int;
  leaves_per_pod : int;
  spines_per_pod : int;
  hosts_per_leaf : int;
  cores_per_plane : int;
  link_gbps : float;
      (** uniform capacity of every physical link, in Gbit/s — the
          denominator the telemetry layer turns per-link byte counts into
          utilization with *)
}

val create :
  pods:int ->
  leaves_per_pod:int ->
  spines_per_pod:int ->
  hosts_per_leaf:int ->
  cores_per_plane:int ->
  t
(** Raises [Invalid_argument] on non-positive pod/leaf/spine/host counts, a
    negative core count, or a multi-pod topology with no core plane. Link
    capacity defaults to 10 Gbit/s; override with {!with_link_gbps}. *)

val with_link_gbps : t -> float -> t
(** Functional update of the uniform link capacity. Raises
    [Invalid_argument] if non-positive. *)

val link_gbps : t -> float

val facebook_fabric : unit -> t
(** The paper's evaluation topology: 12 pods, 48 leaves and 4 spines per pod,
    48 hosts per leaf, 12 cores per plane — 27,648 hosts. *)

val running_example : unit -> t
(** Figure 3a: 4 pods, 2 leaves and 2 spines per pod, 8 hosts per leaf,
    4 cores in 2 planes. *)

val leaf_spine : leaves:int -> spines:int -> hosts_per_leaf:int -> t
(** Two-tier topology (single pod, no cores), as in the CONGA comparison. *)

val num_leaves : t -> int
val num_spines : t -> int
val num_cores : t -> int
val num_hosts : t -> int
val num_switches : t -> int
val is_two_tier : t -> bool

val leaf_of_host : t -> int -> int
val pod_of_leaf : t -> int -> int
val pod_of_host : t -> int -> int
val host_port_on_leaf : t -> int -> int
(** Downstream port index of a host on its leaf. *)

val leaf_port_on_spine : t -> int -> int
(** Downstream port index of a leaf on any spine of its pod. *)

val hosts_of_leaf : t -> int -> int list
val leaves_of_pod : t -> int -> int list
val spines_of_pod : t -> int -> int list

val leaf_downstream_width : t -> int
(** Bitmap width of a downstream-leaf p-rule ([hosts_per_leaf]). *)

val spine_downstream_width : t -> int
(** Bitmap width of a downstream-spine p-rule ([leaves_per_pod]). *)

val core_downstream_width : t -> int
(** Bitmap width of the core p-rule ([pods]). *)

val leaf_upstream_width : t -> int
(** Upstream ports on a leaf ([spines_per_pod]). *)

val spine_upstream_width : t -> int
(** Upstream ports on a spine ([cores_per_plane]). *)

val leaf_id_bits : t -> int
(** Bits needed for a leaf switch identifier in a p-rule. *)

val spine_id_bits : t -> int
(** Bits for a logical-spine (pod) identifier. *)

val bits_needed : int -> int
(** [bits_needed n] = bits to address [n] distinct values (min 1). *)

val validate : t -> unit
(** Re-checks internal invariants; raises [Invalid_argument] on violation.
    Used by property tests. *)

val write : Byteio.Writer.t -> t -> unit
(** Durable wire codec (snapshot records). *)

val read : Byteio.Reader.t -> t
(** Inverse of {!write}; validates through {!create} and raises
    {!Byteio.Reader.Corrupt} on any malformed or semantically invalid
    input. *)

val pp : Format.formatter -> t -> unit
