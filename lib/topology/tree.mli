(** Multicast trees on the logical Clos topology.

    Given the set of member hosts of a group, the tree is fully determined by
    the topology (§3.1 D2): the participating leaves forward on their member
    host ports, each participating pod's logical spine forwards on its
    participating leaf ports, and the logical core forwards on the
    participating pods. These per-switch output bitmaps are exactly the
    inputs to the p-/s-rule generation algorithm (§3.2). *)

type t = {
  topo : Topology.t;
  mutable members : int array;
      (** capacity buffer: indices [[0, nmembers)] hold the member hosts,
          sorted and deduplicated; the tail is scratch so the membership
          fast path stays allocation-free. Use {!member_array} /
          {!member_list} / {!iter_members} rather than reading the field. *)
  mutable nmembers : int;  (** live prefix length of [members] *)
  leaf_bitmaps : (int * Bitmap.t) list;
      (** (leaf id, downstream host-port bitmap), ascending by leaf id *)
  spine_bitmaps : (int * Bitmap.t) list;
      (** (pod id = logical spine id, downstream leaf-port bitmap) *)
  core_bitmap : Bitmap.t;  (** pods participating, width [pods] *)
}

val of_members : Topology.t -> int list -> t
(** Builds the tree for the given member hosts. Duplicates are removed.
    Raises [Invalid_argument] if the member list is empty or contains an
    out-of-range host. *)

val leaves : t -> int list
(** Participating leaf ids, ascending. *)

val pods : t -> int list
(** Participating pod ids, ascending. *)

val member_count : t -> int

val member_array : t -> int array
(** Fresh array of the member hosts, sorted (compacts the capacity tail). *)

val member_list : t -> int list
(** Member hosts, sorted. *)

val iter_members : (int -> unit) -> t -> unit
(** Applies the function to every member host in ascending order, without
    allocating an intermediate list or array. *)

val leaf_count : t -> int
val pod_count : t -> int

val mem_host : t -> int -> bool
(** Is the host a member? (binary search) *)

val ideal_link_transmissions : t -> sender:int -> int
(** Number of link traversals of one packet under ideal multicast from
    [sender]: host→leaf, up to spine/core as needed, and down the exact tree.
    [sender] need not be a member. Used as the traffic-overhead baseline. *)

val leaf_bitmap : t -> int -> Bitmap.t option
(** Exact downstream bitmap of a leaf, if participating. *)

val copy : t -> t
(** Deep copy (fresh bitmaps and a compacted members array) — a stable
    snapshot across later in-place mutations by {!add_member} /
    {!remove_member}. *)

val add_member : t -> int -> bool
(** [add_member t h] is the membership-delta fast path: when [h]'s leaf
    already participates, sets the host's port bit {e in place} (aliasing
    rule bitmaps see the flip too), splices the host into the sorted
    members buffer without allocating (amortized — the capacity doubles on
    the cold overflow path) and returns [true]. [false] — with the tree
    untouched — when the host's leaf does not participate (structural
    change: the caller must rebuild via {!of_members}). Raises
    [Invalid_argument] on an out-of-range or already-member host. *)

val remove_member : t -> int -> bool
(** Dual of {!add_member}: clears the host's port bit in place. [false]
    when the host is the last member on its leaf (the leaf would vanish
    from the tree — structural). Raises [Invalid_argument] if not a
    member. *)

val spine_bitmap : t -> int -> Bitmap.t option
(** Exact downstream bitmap of a pod's logical spine, if participating. *)

val equal_bitmaps : (int * Bitmap.t) list -> (int * Bitmap.t) list -> bool
(** Same switch ids in order with equal bitmaps (by {!Bitmap.equal}) —
    the comparison for [leaf_bitmaps] / [spine_bitmaps] sections. *)
