type t = {
  topo : Topology.t;
  mutable members : int array;
      (* capacity buffer: indices [0, nmembers) hold the sorted member
         hosts; the tail is scratch so the delta fast path never
         reallocates on the common case *)
  mutable nmembers : int;
  leaf_bitmaps : (int * Bitmap.t) list;
  spine_bitmaps : (int * Bitmap.t) list;
  core_bitmap : Bitmap.t;
}

let of_members topo member_list =
  if member_list = [] then invalid_arg "Tree.of_members: empty group";
  let members = Array.of_list (List.sort_uniq compare member_list) in
  Array.iter
    (fun h ->
      if h < 0 || h >= Topology.num_hosts topo then
        invalid_arg "Tree.of_members: host out of range")
    members;
  let leaf_tbl = Hashtbl.create 16 in
  Array.iter
    (fun h ->
      let l = Topology.leaf_of_host topo h in
      let bm =
        match Hashtbl.find_opt leaf_tbl l with
        | Some bm -> bm
        | None ->
            let bm = Bitmap.create (Topology.leaf_downstream_width topo) in
            Hashtbl.add leaf_tbl l bm;
            bm
      in
      Bitmap.set bm (Topology.host_port_on_leaf topo h))
    members;
  let leaf_bitmaps =
    Hashtbl.fold (fun l bm acc -> (l, bm) :: acc) leaf_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let spine_tbl = Hashtbl.create 8 in
  List.iter
    (fun (l, _) ->
      let p = Topology.pod_of_leaf topo l in
      let bm =
        match Hashtbl.find_opt spine_tbl p with
        | Some bm -> bm
        | None ->
            let bm = Bitmap.create (Topology.spine_downstream_width topo) in
            Hashtbl.add spine_tbl p bm;
            bm
      in
      Bitmap.set bm (Topology.leaf_port_on_spine topo l))
    leaf_bitmaps;
  let spine_bitmaps =
    Hashtbl.fold (fun p bm acc -> (p, bm) :: acc) spine_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let core_bitmap = Bitmap.create (Topology.core_downstream_width topo) in
  List.iter (fun (p, _) -> Bitmap.set core_bitmap p) spine_bitmaps;
  {
    topo;
    members;
    nmembers = Array.length members;
    leaf_bitmaps;
    spine_bitmaps;
    core_bitmap;
  }

let leaves t = List.map fst t.leaf_bitmaps
let pods t = List.map fst t.spine_bitmaps

(* elmo-lint: zero-alloc *)
let member_count t = t.nmembers

let member_array t = Array.sub t.members 0 t.nmembers
let member_list t = Array.to_list (member_array t)

let iter_members f t =
  for i = 0 to t.nmembers - 1 do
    f (Array.unsafe_get t.members i)
  done

let leaf_count t = List.length t.leaf_bitmaps
let pod_count t = List.length t.spine_bitmaps

(* elmo-lint: zero-alloc *)
let rec mem_search (a : int array) h lo hi =
  if lo > hi then -1
  else begin
    let mid = (lo + hi) / 2 in
    let v = Array.unsafe_get a mid in
    if v = h then mid
    else if v < h then mem_search a h (mid + 1) hi
    else mem_search a h lo (mid - 1)
  end

(* elmo-lint: zero-alloc *)
let mem_host t h = mem_search t.members h 0 (t.nmembers - 1) >= 0

let leaf_bitmap t l = List.assoc_opt l t.leaf_bitmaps
let spine_bitmap t p = List.assoc_opt p t.spine_bitmaps

let equal_bitmaps a b =
  List.equal (fun (i, x) (j, y) -> i = j && Bitmap.equal x y) a b

let copy t =
  {
    t with
    members = member_array t;  (* compacts the capacity tail *)
    leaf_bitmaps = List.map (fun (l, bm) -> (l, Bitmap.copy bm)) t.leaf_bitmaps;
    spine_bitmaps = List.map (fun (p, bm) -> (p, Bitmap.copy bm)) t.spine_bitmaps;
    core_bitmap = Bitmap.copy t.core_bitmap;
  }

(* Incremental membership (the encoder's delta fast path). The leaf bitmap
   and the members buffer are mutated IN PLACE — deliberately: singleton
   p-rules and s-rules alias the tree's bitmaps, so an in-place flip
   updates those rules for free, and the capacity-backed members buffer
   makes the steady-state join/leave allocation-free (checked by the
   zero-alloc lint rule and the Gc.minor_words harness). Both return
   [false] when the change is structural (a new leaf appears / a leaf
   empties) and leave the tree untouched; the caller must re-encode. *)

(* Allocation-free assoc lookup for the leaf bitmap: [no_bitmap] is the
   "leaf not participating" sentinel (an option result would allocate). *)
let no_bitmap = Bitmap.create 0

(* elmo-lint: zero-alloc *)
let rec find_leaf_bm bms (l : int) =
  match bms with
  | [] -> no_bitmap
  | (l', bm) :: rest -> if l' = l then bm else find_leaf_bm rest l

(* elmo-lint: zero-alloc *)
let rec insert_pos (a : int array) n h i =
  if i >= n || Array.unsafe_get a i >= h then i else insert_pos a n h (i + 1)

let grow_members t =
  (* elmo-lint: allow zero-alloc — cold capacity doubling, amortized O(1) *)
  let bigger = Array.make (max 8 (2 * Array.length t.members)) 0 in
  Array.blit t.members 0 bigger 0 t.nmembers;
  t.members <- bigger

(* elmo-lint: zero-alloc *)
let add_member t h =
  if h < 0 || h >= Topology.num_hosts t.topo then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Tree.add_member: host out of range";
  if mem_host t h then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Tree.add_member: already a member";
  let bm = find_leaf_bm t.leaf_bitmaps (Topology.leaf_of_host t.topo h) in
  if bm == no_bitmap then false
  else begin
    Bitmap.set bm (Topology.host_port_on_leaf t.topo h);
    if t.nmembers >= Array.length t.members then grow_members t;
    let pos = insert_pos t.members t.nmembers h 0 in
    Array.blit t.members pos t.members (pos + 1) (t.nmembers - pos);
    Array.unsafe_set t.members pos h;
    t.nmembers <- t.nmembers + 1;
    true
  end

(* elmo-lint: zero-alloc *)
let remove_member t h =
  let pos = mem_search t.members h 0 (t.nmembers - 1) in
  if pos < 0 then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Tree.remove_member: not a member";
  let bm = find_leaf_bm t.leaf_bitmaps (Topology.leaf_of_host t.topo h) in
  if bm == no_bitmap || Bitmap.popcount bm <= 1 then false
  else begin
    Bitmap.clear bm (Topology.host_port_on_leaf t.topo h);
    Array.blit t.members (pos + 1) t.members pos (t.nmembers - pos - 1);
    t.nmembers <- t.nmembers - 1;
    true
  end

let ideal_link_transmissions t ~sender =
  let topo = t.topo in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in
  (* Hypervisor to leaf. *)
  let count = ref 1 in
  let deliveries_at l =
    match leaf_bitmap t l with Some bm -> Bitmap.popcount bm | None -> 0
  in
  (* Sender leaf delivers to local members, minus the sender itself. *)
  let local = deliveries_at sl in
  let local = if mem_host t sender then local - 1 else local in
  count := !count + local;
  let other_leaves_in_pod =
    List.filter (fun (l, _) -> l <> sl && Topology.pod_of_leaf topo l = sp)
      t.leaf_bitmaps
  in
  let other_pods = List.filter (fun (p, _) -> p <> sp) t.spine_bitmaps in
  let beyond_leaf =
    not (List.is_empty other_leaves_in_pod && List.is_empty other_pods)
  in
  if beyond_leaf then begin
    (* Leaf up to one pod spine. *)
    incr count;
    List.iter
      (fun (l, _) -> count := !count + 1 + deliveries_at l)
      other_leaves_in_pod;
    if not (List.is_empty other_pods) then begin
      (* Spine up to one core. *)
      incr count;
      List.iter
        (fun (p, spine_bm) ->
          (* Core down to pod spine. *)
          incr count;
          Bitmap.iter
            (fun port ->
              let l = (p * topo.Topology.leaves_per_pod) + port in
              count := !count + 1 + deliveries_at l)
            spine_bm)
        other_pods
    end
  end;
  !count
