type t = {
  topo : Topology.t;
  members : int array;
  leaf_bitmaps : (int * Bitmap.t) list;
  spine_bitmaps : (int * Bitmap.t) list;
  core_bitmap : Bitmap.t;
}

let of_members topo member_list =
  if member_list = [] then invalid_arg "Tree.of_members: empty group";
  let members = Array.of_list (List.sort_uniq compare member_list) in
  Array.iter
    (fun h ->
      if h < 0 || h >= Topology.num_hosts topo then
        invalid_arg "Tree.of_members: host out of range")
    members;
  let leaf_tbl = Hashtbl.create 16 in
  Array.iter
    (fun h ->
      let l = Topology.leaf_of_host topo h in
      let bm =
        match Hashtbl.find_opt leaf_tbl l with
        | Some bm -> bm
        | None ->
            let bm = Bitmap.create (Topology.leaf_downstream_width topo) in
            Hashtbl.add leaf_tbl l bm;
            bm
      in
      Bitmap.set bm (Topology.host_port_on_leaf topo h))
    members;
  let leaf_bitmaps =
    Hashtbl.fold (fun l bm acc -> (l, bm) :: acc) leaf_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let spine_tbl = Hashtbl.create 8 in
  List.iter
    (fun (l, _) ->
      let p = Topology.pod_of_leaf topo l in
      let bm =
        match Hashtbl.find_opt spine_tbl p with
        | Some bm -> bm
        | None ->
            let bm = Bitmap.create (Topology.spine_downstream_width topo) in
            Hashtbl.add spine_tbl p bm;
            bm
      in
      Bitmap.set bm (Topology.leaf_port_on_spine topo l))
    leaf_bitmaps;
  let spine_bitmaps =
    Hashtbl.fold (fun p bm acc -> (p, bm) :: acc) spine_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let core_bitmap = Bitmap.create (Topology.core_downstream_width topo) in
  List.iter (fun (p, _) -> Bitmap.set core_bitmap p) spine_bitmaps;
  { topo; members; leaf_bitmaps; spine_bitmaps; core_bitmap }

let leaves t = List.map fst t.leaf_bitmaps
let pods t = List.map fst t.spine_bitmaps
let member_count t = Array.length t.members
let leaf_count t = List.length t.leaf_bitmaps
let pod_count t = List.length t.spine_bitmaps

let mem_host t h =
  let rec go lo hi =
    if lo > hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if t.members.(mid) = h then true
      else if t.members.(mid) < h then go (mid + 1) hi
      else go lo (mid - 1)
    end
  in
  go 0 (Array.length t.members - 1)

let leaf_bitmap t l = List.assoc_opt l t.leaf_bitmaps
let spine_bitmap t p = List.assoc_opt p t.spine_bitmaps

let equal_bitmaps a b =
  List.equal (fun (i, x) (j, y) -> i = j && Bitmap.equal x y) a b

let copy t =
  {
    t with
    members = Array.copy t.members;
    leaf_bitmaps = List.map (fun (l, bm) -> (l, Bitmap.copy bm)) t.leaf_bitmaps;
    spine_bitmaps = List.map (fun (p, bm) -> (p, Bitmap.copy bm)) t.spine_bitmaps;
    core_bitmap = Bitmap.copy t.core_bitmap;
  }

(* Incremental membership (the encoder's delta fast path). The leaf bitmap
   is mutated IN PLACE — deliberately: singleton p-rules and s-rules alias
   the tree's bitmaps, so an in-place flip updates those rules for free. The
   members array is rebuilt (sorted), sharing everything else. Both return
   [None] when the change is structural (a new leaf appears / a leaf
   empties) and leave the tree untouched; the caller must re-encode. *)

let add_member t h =
  if h < 0 || h >= Topology.num_hosts t.topo then
    invalid_arg "Tree.add_member: host out of range";
  if mem_host t h then invalid_arg "Tree.add_member: already a member";
  let l = Topology.leaf_of_host t.topo h in
  match List.assoc_opt l t.leaf_bitmaps with
  | None -> None
  | Some bm ->
      Bitmap.set bm (Topology.host_port_on_leaf t.topo h);
      let n = Array.length t.members in
      let members = Array.make (n + 1) h in
      let i = ref 0 in
      while !i < n && t.members.(!i) < h do
        members.(!i) <- t.members.(!i);
        incr i
      done;
      Array.blit t.members !i members (!i + 1) (n - !i);
      Some { t with members }

let remove_member t h =
  if not (mem_host t h) then invalid_arg "Tree.remove_member: not a member";
  let l = Topology.leaf_of_host t.topo h in
  match List.assoc_opt l t.leaf_bitmaps with
  | None -> None
  | Some bm ->
      if Bitmap.popcount bm <= 1 then None
      else begin
        Bitmap.clear bm (Topology.host_port_on_leaf t.topo h);
        let n = Array.length t.members in
        let members = Array.make (n - 1) 0 in
        let j = ref 0 in
        Array.iter
          (fun m ->
            if m <> h then begin
              members.(!j) <- m;
              incr j
            end)
          t.members;
        Some { t with members }
      end

let ideal_link_transmissions t ~sender =
  let topo = t.topo in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in
  (* Hypervisor to leaf. *)
  let count = ref 1 in
  let deliveries_at l =
    match leaf_bitmap t l with Some bm -> Bitmap.popcount bm | None -> 0
  in
  (* Sender leaf delivers to local members, minus the sender itself. *)
  let local = deliveries_at sl in
  let local = if mem_host t sender then local - 1 else local in
  count := !count + local;
  let other_leaves_in_pod =
    List.filter (fun (l, _) -> l <> sl && Topology.pod_of_leaf topo l = sp)
      t.leaf_bitmaps
  in
  let other_pods = List.filter (fun (p, _) -> p <> sp) t.spine_bitmaps in
  let beyond_leaf =
    not (List.is_empty other_leaves_in_pod && List.is_empty other_pods)
  in
  if beyond_leaf then begin
    (* Leaf up to one pod spine. *)
    incr count;
    List.iter
      (fun (l, _) -> count := !count + 1 + deliveries_at l)
      other_leaves_in_pod;
    if not (List.is_empty other_pods) then begin
      (* Spine up to one core. *)
      incr count;
      List.iter
        (fun (p, spine_bm) ->
          (* Core down to pod spine. *)
          incr count;
          Bitmap.iter
            (fun port ->
              let l = (p * topo.Topology.leaves_per_pod) + port in
              count := !count + 1 + deliveries_at l)
            spine_bm)
        other_pods
    end
  end;
  !count
