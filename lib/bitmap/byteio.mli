(** Byte-granular serialization with CRC32 — the substrate of the durable
    wire format (journal records, controller snapshots).

    {!Bitio} serializes the bit-packed Elmo {e packet} header; this module
    serializes the {e durable} byte stream the controller persists. Both
    sides are deterministic: a value writes to one byte sequence and reads
    back from exactly that sequence.

    Robustness contract: a {!Reader} over hostile bytes either returns a
    structurally valid value or raises {!Reader.Corrupt} — it never reads
    out of bounds and never allocates more than the input length can
    justify (every length prefix is validated against the bytes actually
    remaining before anything is allocated). Callers that must be total
    (e.g. [Wire.load]) catch [Corrupt] at the record boundary. *)

(** {1 CRC32}

    The reflected CRC-32 (polynomial [0xEDB88320], the Ethernet/zip one),
    table-driven. Values are the low 32 bits of an [int]. *)

val crc32_init : int
(** Initial running state. *)

val crc32_feed : int -> bytes -> pos:int -> len:int -> int
(** Folds a byte range into the running state. Raises [Invalid_argument]
    on an out-of-range slice. *)

val crc32_finish : int -> int
(** Final xor; the value to store or compare. *)

val crc32 : bytes -> pos:int -> len:int -> int
(** [crc32_finish (crc32_feed crc32_init b ~pos ~len)]. *)

module Writer : sig
  type t

  val create : unit -> t
  val length : t -> int

  val u8 : t -> int -> unit
  (** Raises [Invalid_argument] unless [0 <= v < 256]. *)

  val u32 : t -> int -> unit
  (** Little-endian. Raises [Invalid_argument] unless [0 <= v < 2^32]. *)

  val int : t -> int -> unit
  (** Full OCaml int as 8 bytes little-endian (two's complement). *)

  val bool : t -> bool -> unit
  val float : t -> float -> unit
  (** IEEE-754 bits, 8 bytes little-endian. *)

  val raw : t -> bytes -> unit
  (** The bytes verbatim, no length prefix. *)

  val bytes_field : t -> bytes -> unit
  (** u32 length prefix + the bytes. *)

  val bitmap : t -> Bitmap.t -> unit
  (** u32 width + packed bits ({!Bitmap.to_bytes}). *)

  val option : t -> (t -> 'a -> unit) -> 'a option -> unit
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
  (** u32 count + elements in order. *)

  val int_array : t -> int array -> unit
  val bool_array : t -> bool array -> unit
  (** u32 count + one byte per element. *)

  val to_bytes : t -> bytes
end

module Reader : sig
  type t

  exception Corrupt
  (** Truncated or malformed input: a read past the end of the slice, a
      length prefix exceeding the bytes remaining, a byte that is not a
      valid [bool], or a failed invariant in a caller's codec. *)

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t
  (** A reader over [b[pos .. pos+len)] (default: the whole buffer).
      Raises [Invalid_argument] on an out-of-range slice. *)

  val pos : t -> int
  (** Absolute offset of the next byte in the underlying buffer. *)

  val remaining : t -> int

  val u8 : t -> int
  val u32 : t -> int
  val int : t -> int
  val bool : t -> bool
  val float : t -> float

  val raw : t -> int -> bytes
  (** [raw r n] reads exactly [n] bytes. *)

  val bytes_field : t -> bytes
  val bitmap : t -> Bitmap.t
  val option : t -> (t -> 'a) -> 'a option
  val list : t -> (t -> 'a) -> 'a list
  val int_array : t -> int array
  val bool_array : t -> bool array

  val check : bool -> unit
  (** [check cond] raises {!Corrupt} unless [cond] — for codec-level
      invariants (array lengths, value ranges) beyond raw framing. *)
end
