(* Byte-granular serialization with CRC32. The Reader is the hostile-input
   boundary of the durable wire format: every length prefix is validated
   against the bytes actually remaining before allocation, every read is
   bounds-checked, and all failures funnel into the single exception
   [Corrupt] that Wire.load catches at the record boundary. *)

(* Reflected CRC-32, polynomial 0xEDB88320. A top-level immutable array is
   domain-safe (written once at module init, read-only afterwards). *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
        else c := !c lsr 1
      done;
      !c)

let crc32_init = 0xFFFFFFFF

let crc32_feed crc b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Byteio.crc32_feed: slice out of range"
    (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  else begin
    let crc = ref crc in
    for i = pos to pos + len - 1 do
      let byte = Char.code (Bytes.unsafe_get b i) in
      crc := crc_table.((!crc lxor byte) land 0xff) lxor (!crc lsr 8)
    done;
    !crc
  end

let crc32_finish crc = crc lxor 0xFFFFFFFF
let crc32 b ~pos ~len = crc32_finish (crc32_feed crc32_init b ~pos ~len)

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let length = Buffer.length

  let u8 t v =
    if v < 0 || v > 0xff then
      invalid_arg "Byteio.Writer.u8: out of range"
      (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
    else Buffer.add_char t (Char.chr v)

  let u32 t v =
    if v < 0 || v > 0xFFFFFFFF then
      invalid_arg "Byteio.Writer.u32: out of range"
      (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
    else Buffer.add_int32_le t (Int32.of_int v)

  let int t v = Buffer.add_int64_le t (Int64.of_int v)
  let bool t v = Buffer.add_char t (if v then '\001' else '\000')
  let float t v = Buffer.add_int64_le t (Int64.bits_of_float v)
  let raw t b = Buffer.add_bytes t b

  let bytes_field t b =
    u32 t (Bytes.length b);
    raw t b

  let bitmap t bm =
    u32 t (Bitmap.width bm);
    raw t (Bitmap.to_bytes bm)

  let option t f = function
    | None -> bool t false
    | Some v ->
        bool t true;
        f t v

  let list t f xs =
    u32 t (List.length xs);
    List.iter (fun x -> f t x) xs

  let int_array t a =
    u32 t (Array.length a);
    Array.iter (fun v -> int t v) a

  let bool_array t a =
    u32 t (Array.length a);
    Array.iter (fun v -> bool t v) a

  let to_bytes = Buffer.to_bytes
end

module Reader = struct
  type t = { data : bytes; limit : int; mutable pos : int }

  exception Corrupt

  let of_bytes ?(pos = 0) ?len b =
    let len = match len with Some l -> l | None -> Bytes.length b - pos in
    if pos < 0 || len < 0 || pos + len > Bytes.length b then
      invalid_arg "Byteio.Reader.of_bytes: slice out of range"
      (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
    else { data = b; limit = pos + len; pos }

  let pos t = t.pos
  let remaining t = t.limit - t.pos
  let check cond = if not cond then raise Corrupt

  let need t n = if n < 0 || t.limit - t.pos < n then raise Corrupt

  let u8 t =
    need t 1;
    let v = Char.code (Bytes.unsafe_get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let u32 t =
    need t 4;
    let v = Int32.to_int (Bytes.get_int32_le t.data t.pos) land 0xFFFFFFFF in
    t.pos <- t.pos + 4;
    v

  let int t =
    need t 8;
    let v = Int64.to_int (Bytes.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let bool t =
    match u8 t with 0 -> false | 1 -> true | _ -> raise Corrupt

  let float t =
    need t 8;
    let v = Int64.float_of_bits (Bytes.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let raw t n =
    need t n;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b

  let bytes_field t =
    let n = u32 t in
    raw t n

  let bitmap t =
    let width = u32 t in
    (* Guard before allocating: a hostile width field must not trigger a
       huge allocation the input bytes cannot back. *)
    let nbytes = (width + 7) / 8 in
    need t nbytes;
    let packed = raw t nbytes in
    (* of_bytes masks padding bits of the last byte, so hostile padding
       cannot violate the bitmap's width invariant. *)
    match Bitmap.of_bytes width packed with
    | bm -> bm
    | exception Invalid_argument _ -> raise Corrupt

  let option t f = if bool t then Some (f t) else None

  (* Counted reads evaluate elements with an explicit in-order loop
     (List.init / Array.init evaluation order is unspecified) and guard the
     count against the bytes remaining before allocating: each element
     consumes at least one byte, so count <= remaining is a sound bound. *)
  let list t f =
    let n = u32 t in
    check (n <= remaining t);
    let rec go acc i = if i = 0 then List.rev acc else go (f t :: acc) (i - 1) in
    go [] n

  let int_array t =
    let n = u32 t in
    check (n * 8 <= remaining t);
    let a = Array.make (max n 1) 0 in
    for i = 0 to n - 1 do
      a.(i) <- int t
    done;
    if n = 0 then [||] else a

  let bool_array t =
    let n = u32 t in
    check (n <= remaining t);
    let a = Array.make (max n 1) false in
    for i = 0 to n - 1 do
      a.(i) <- bool t
    done;
    if n = 0 then [||] else a
end
