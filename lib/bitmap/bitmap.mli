(** Fixed-width bit vectors used as switch output-port bitmaps.

    A p-rule's payload is a bitmap over a switch's ports (§3.1 D1 of the
    paper); sharing decisions are made on bitwise OR and Hamming distance of
    these bitmaps (§3.2). Width is fixed at creation and all binary operations
    require equal widths. *)

type t

val create : int -> t
(** [create width] is the all-zeros bitmap of [width] bits.
    Raises [Invalid_argument] if [width < 0]. *)

val width : t -> int

val copy : t -> t

val set : t -> int -> unit
(** Raises [Invalid_argument] when the index is out of bounds. *)

val clear : t -> int -> unit
val get : t -> int -> bool

val popcount : t -> int
(** Number of set bits. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val union : t -> t -> t
(** Fresh bitwise OR. Raises [Invalid_argument] on width mismatch. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ORs [src] into [dst] in place. *)

val reset : t -> unit
(** Clears every bit in place. *)

val copy_into : dst:t -> t -> unit
(** [copy_into ~dst src] overwrites [dst] with [src] in place. Raises
    [Invalid_argument] on width mismatch. *)

val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] has the bits of [a] not in [b]. *)

val subset : t -> t -> bool
(** [subset a b] iff every bit of [a] is set in [b]. *)

val hamming : t -> t -> int
(** Number of differing bit positions. *)

val union_cost : t -> t -> int
(** [union_cost a acc] = popcount (union a acc) - popcount acc: how many new
    bits [a] adds — the quantity minimized by approximate MIN-K-UNION. *)

val of_list : int -> int list -> t
(** [of_list width indices]. *)

val to_list : t -> int list
(** Indices of set bits, ascending. *)

val iter : (int -> unit) -> t -> unit
(** Applies the function to each set-bit index, ascending. *)

val union_all : int -> t list -> t
(** [union_all width ts] ORs all bitmaps ([create width] if the list is
    empty). *)

val to_bytes : t -> bytes
(** Little-endian packed bits, [ceil (width / 8)] bytes; for wire encoding. *)

val of_bytes : int -> bytes -> t
(** [of_bytes width b] inverse of {!to_bytes}. Raises [Invalid_argument] if
    [b] is shorter than [ceil (width / 8)] bytes. *)

val pp : Format.formatter -> t -> unit
(** Renders as a binary string, bit 0 leftmost (matching Figure 3a's
    "10", "01", "11" annotations). *)

val to_string : t -> string
