module Writer = struct
  type t = {
    buf : Buffer.t;
    mutable cur : int; (* partial byte, bits fill from MSB *)
    mutable used : int; (* bits used in [cur], 0..7 *)
    mutable total : int;
  }

  let create () = { buf = Buffer.create 64; cur = 0; used = 0; total = 0 }

  let bit t b =
    if b then t.cur <- t.cur lor (1 lsl (7 - t.used));
    t.used <- t.used + 1;
    t.total <- t.total + 1;
    if t.used = 8 then begin
      Buffer.add_char t.buf (Char.chr t.cur);
      t.cur <- 0;
      t.used <- 0
    end

  let bits t value n =
    if n < 0 || n > 62 then invalid_arg "Bitio.Writer.bits: width out of range";
    if n < 62 && (value < 0 || value lsr n <> 0) then
      invalid_arg "Bitio.Writer.bits: value does not fit";
    for i = n - 1 downto 0 do
      bit t (value land (1 lsl i) <> 0)
    done

  let bitmap t bm =
    for i = 0 to Bitmap.width bm - 1 do
      bit t (Bitmap.get bm i)
    done

  let align_byte t = while t.used <> 0 do bit t false done

  let bit_length t = t.total

  let to_bytes t =
    let copy = { buf = Buffer.create 8; cur = t.cur; used = t.used; total = 0 } in
    Buffer.add_buffer copy.buf t.buf;
    align_byte copy;
    Buffer.to_bytes copy.buf
end

module Sink = struct
  type t = {
    data : bytes;
    mutable byte : int; (* next byte index in [data] *)
    mutable cur : int; (* partial byte, bits fill from MSB *)
    mutable used : int; (* bits used in [cur], 0..7 *)
    mutable total : int;
  }

  let of_bytes ?(pos = 0) data =
    if pos < 0 || pos > Bytes.length data then
      invalid_arg "Bitio.Sink.of_bytes: position out of range";
    { data; byte = pos; cur = 0; used = 0; total = 0 }

  (* elmo-lint: zero-alloc *)
  let reset t ~pos =
    if pos < 0 || pos > Bytes.length t.data then
      (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
      invalid_arg "Bitio.Sink.reset: position out of range";
    t.byte <- pos;
    t.cur <- 0;
    t.used <- 0;
    t.total <- 0

  (* elmo-lint: zero-alloc *)
  let flush t =
    if t.byte >= Bytes.length t.data then
      (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
      invalid_arg "Bitio.Sink: output buffer too small";
    Bytes.unsafe_set t.data t.byte (Char.unsafe_chr t.cur);
    t.byte <- t.byte + 1;
    t.cur <- 0;
    t.used <- 0

  (* elmo-lint: zero-alloc *)
  let bit t b =
    if b then t.cur <- t.cur lor (1 lsl (7 - t.used));
    t.used <- t.used + 1;
    t.total <- t.total + 1;
    if t.used = 8 then flush t

  (* elmo-lint: zero-alloc *)
  let rec bits_loop t value i =
    if i >= 0 then begin
      bit t (value land (1 lsl i) <> 0);
      bits_loop t value (i - 1)
    end

  (* elmo-lint: zero-alloc *)
  let bits t value n =
    if n < 0 || n > 62 then
      (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
      invalid_arg "Bitio.Sink.bits: width out of range";
    if n < 62 && (value < 0 || value lsr n <> 0) then
      (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
      invalid_arg "Bitio.Sink.bits: value does not fit";
    bits_loop t value (n - 1)

  (* elmo-lint: zero-alloc *)
  let bitmap t bm =
    for i = 0 to Bitmap.width bm - 1 do
      bit t (Bitmap.get bm i)
    done

  (* elmo-lint: zero-alloc *)
  let align_byte t =
    while t.used <> 0 do
      bit t false
    done

  (* elmo-lint: zero-alloc *)
  let bit_length t = t.total

  (* elmo-lint: zero-alloc *)
  let byte_pos t = t.byte

  (* elmo-lint: zero-alloc *)
  let finish t =
    align_byte t;
    t.byte
end

module Reader = struct
  type t = { data : bytes; mutable pos : int }

  exception Truncated

  let of_bytes data = { data; pos = 0 }

  let bit t =
    let byte = t.pos / 8 in
    if byte >= Bytes.length t.data then raise Truncated;
    let b = Char.code (Bytes.get t.data byte) land (1 lsl (7 - (t.pos mod 8))) <> 0 in
    t.pos <- t.pos + 1;
    b

  let bits t n =
    if n < 0 || n > 62 then invalid_arg "Bitio.Reader.bits: width out of range";
    let acc = ref 0 in
    for _ = 1 to n do
      acc := (!acc lsl 1) lor (if bit t then 1 else 0)
    done;
    !acc

  let bitmap t width =
    let bm = Bitmap.create width in
    for i = 0 to width - 1 do
      if bit t then Bitmap.set bm i
    done;
    bm

  let align_byte t = t.pos <- (t.pos + 7) / 8 * 8

  let pos t = t.pos
  let remaining t = (Bytes.length t.data * 8) - t.pos
end
