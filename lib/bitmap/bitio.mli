(** Bit-granular serialization, the substrate for Elmo's wire format.

    Elmo headers are not byte-aligned: a p-rule is a bitmap (width = port
    count of the layer), a next-rule flag, and n-bit switch identifiers
    (§3.1, Figure 2). Writer appends most-significant-bit-first fields;
    Reader consumes them in the same order. *)

module Writer : sig
  type t

  val create : unit -> t

  val bit : t -> bool -> unit
  val bits : t -> int -> int -> unit
  (** [bits w value n] appends the low [n] bits of [value], MSB first.
      Raises [Invalid_argument] if [n < 0], [n > 62], or [value] does not fit
      in [n] bits. *)

  val bitmap : t -> Bitmap.t -> unit
  (** Appends bitmap bits in index order (bit 0 first). *)

  val align_byte : t -> unit
  (** Pads with zero bits to the next byte boundary. *)

  val bit_length : t -> int
  val to_bytes : t -> bytes
  (** Final padding to a whole byte with zeros. *)
end

module Sink : sig
  (** A non-allocating {!Writer}: bits go straight into a caller-provided
      byte buffer. The write path allocates nothing on the OCaml heap
      (enforced by the zero-alloc lint rule and an [Allocs.probe] test);
      only the error path — overflowing the buffer or passing an
      out-of-range width — allocates, by raising [Invalid_argument]. *)

  type t

  val of_bytes : ?pos:int -> bytes -> t
  (** [of_bytes ?pos b] writes into [b] starting at byte [pos] (default 0).
      Raises [Invalid_argument] if [pos] is out of range. *)

  val reset : t -> pos:int -> unit
  (** Rewinds the sink to byte [pos] of the same buffer, allocation-free —
      so a steady-state encode loop can reuse one sink across events. *)

  val bit : t -> bool -> unit
  (** Raises [Invalid_argument] if the buffer is full at a byte flush. *)

  val bits : t -> int -> int -> unit
  (** [bits s value n] appends the low [n] bits of [value], MSB first —
      same contract as {!Writer.bits}. *)

  val bitmap : t -> Bitmap.t -> unit
  val align_byte : t -> unit

  val bit_length : t -> int
  (** Bits written so far. *)

  val byte_pos : t -> int
  (** Index of the next byte to be written (complete bytes only). *)

  val finish : t -> int
  (** Pads to a byte boundary and returns the end position: the written
      record occupies [b[pos .. finish t)]. *)
end

module Reader : sig
  type t

  exception Truncated

  val of_bytes : bytes -> t
  val bit : t -> bool
  val bits : t -> int -> int
  val bitmap : t -> int -> Bitmap.t
  (** [bitmap r width] reads [width] bits written by {!Writer.bitmap}. *)

  val align_byte : t -> unit
  val pos : t -> int
  (** Current offset in bits. *)

  val remaining : t -> int
  (** Bits left, counting final padding. *)
end
