(* Bits are stored little-endian within an int array: bit [i] lives in word
   [i / word_bits] at position [i mod word_bits]. Trailing bits of the last
   word are kept at zero as an invariant so popcount/equal can work
   word-wise. *)

let word_bits = 63 (* OCaml native ints; avoid the tag bit complications *)

type t = { width : int; words : int array }

let words_for width = (width + word_bits - 1) / word_bits

let create width =
  if width < 0 then invalid_arg "Bitmap.create: negative width";
  { width; words = Array.make (max 1 (words_for width)) 0 }

let width t = t.width
let copy t = { width = t.width; words = Array.copy t.words }

(* The kernels below are the innermost loops of apply_delta / clustering
   and carry zero-alloc obligations: top-level tail-recursive loops over
   the word arrays (no closures, no refs), checked by elmo-lint and by the
   Gc.minor_words harness in test_zero_alloc.ml. *)

let check_index t i =
  if i < 0 || i >= t.width then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Bitmap: index out of bounds"

(* elmo-lint: zero-alloc *)
let set t i =
  check_index t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) lor (1 lsl (i mod word_bits))

(* elmo-lint: zero-alloc *)
let clear t i =
  check_index t i;
  t.words.(i / word_bits) <- t.words.(i / word_bits) land lnot (1 lsl (i mod word_bits))

(* elmo-lint: zero-alloc *)
let get t i =
  check_index t i;
  t.words.(i / word_bits) land (1 lsl (i mod word_bits)) <> 0

(* elmo-lint: zero-alloc *)
let rec popcount_word_loop w acc =
  if w = 0 then acc else popcount_word_loop (w land (w - 1)) (acc + 1)

(* elmo-lint: zero-alloc *)
let popcount_word w = popcount_word_loop w 0

(* elmo-lint: zero-alloc *)
let rec popcount_loop words i acc =
  if i < 0 then acc
  else popcount_loop words (i - 1) (acc + popcount_word (Array.unsafe_get words i))

(* elmo-lint: zero-alloc *)
let popcount t = popcount_loop t.words (Array.length t.words - 1) 0

(* elmo-lint: zero-alloc *)
let rec all_zero words i =
  i < 0 || (Array.unsafe_get words i = 0 && all_zero words (i - 1))

(* elmo-lint: zero-alloc *)
let is_empty t = all_zero t.words (Array.length t.words - 1)

(* elmo-lint: zero-alloc *)
let rec words_equal (a : int array) b i =
  i < 0 || (Array.unsafe_get a i = Array.unsafe_get b i && words_equal a b (i - 1))

(* Widths equal implies equal word counts, so one length suffices. *)
(* elmo-lint: zero-alloc *)
let equal a b =
  a.width = b.width && words_equal a.words b.words (Array.length a.words - 1)

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let check_width a b =
  if a.width <> b.width then
    (* elmo-lint: allow zero-alloc — error path: raising Invalid_argument allocates *)
    invalid_arg "Bitmap: width mismatch"

let map2 f a b =
  check_width a b;
  { width = a.width; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

(* elmo-lint: zero-alloc *)
let union_into ~dst src =
  check_width dst src;
  for i = 0 to Array.length src.words - 1 do
    Array.unsafe_set dst.words i
      (Array.unsafe_get dst.words i lor Array.unsafe_get src.words i)
  done

(* elmo-lint: zero-alloc *)
let rec subset_loop a b i =
  i < 0
  || (Array.unsafe_get a i land lnot (Array.unsafe_get b i) = 0
     && subset_loop a b (i - 1))

(* elmo-lint: zero-alloc *)
let subset a b =
  check_width a b;
  subset_loop a.words b.words (Array.length a.words - 1)

(* elmo-lint: zero-alloc *)
let rec hamming_words a b i acc =
  if i < 0 then acc
  else
    hamming_words a b (i - 1)
      (acc + popcount_word (Array.unsafe_get a i lxor Array.unsafe_get b i))

(* elmo-lint: zero-alloc *)
let hamming a b =
  check_width a b;
  hamming_words a.words b.words (Array.length a.words - 1) 0

(* elmo-lint: zero-alloc *)
let rec cost_words a acc_w i acc =
  if i < 0 then acc
  else
    cost_words a acc_w (i - 1)
      (acc
      + popcount_word (Array.unsafe_get a i land lnot (Array.unsafe_get acc_w i)))

(* elmo-lint: zero-alloc *)
let union_cost a acc_bm =
  check_width a acc_bm;
  cost_words a.words acc_bm.words (Array.length a.words - 1) 0

(* elmo-lint: zero-alloc *)
let reset t = Array.fill t.words 0 (Array.length t.words) 0

(* elmo-lint: zero-alloc *)
let copy_into ~dst src =
  check_width dst src;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let of_list width indices =
  let t = create width in
  List.iter (set t) indices;
  t

(* Word-wise set-bit traversal: peel the lowest set bit with [w land (-w)];
   its index is the popcount of [lsb - 1] (the trailing-zero count). Only
   O(set bits) work instead of one bounds-checked [get] per position. *)
let iter f t =
  let n = Array.length t.words in
  for wi = 0 to n - 1 do
    let w = ref t.words.(wi) in
    if !w <> 0 then begin
      let base = wi * word_bits in
      while !w <> 0 do
        let lsb = !w land - !w in
        f (base + popcount_word (lsb - 1));
        w := !w land (!w - 1)
      done
    end
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

let union_all width ts =
  let out = create width in
  List.iter (fun t -> union_into ~dst:out t) ts;
  out

(* Byte [j] of the wire form holds bits [8j .. 8j+7]; with 63-bit words a
   byte can straddle two words, so splice the high part in whenever the
   in-word offset leaves fewer than 8 bits. Trailing bits of the last word
   are zero by invariant, so the final byte needs no special casing. *)
let to_bytes t =
  let nbytes = (t.width + 7) / 8 in
  let nwords = Array.length t.words in
  let b = Bytes.create nbytes in
  for j = 0 to nbytes - 1 do
    let pos = 8 * j in
    let wi = pos / word_bits and off = pos mod word_bits in
    let v = t.words.(wi) lsr off in
    let v =
      if off > word_bits - 8 && wi + 1 < nwords then
        v lor (t.words.(wi + 1) lsl (word_bits - off))
      else v
    in
    Bytes.unsafe_set b j (Char.unsafe_chr (v land 0xff))
  done;
  b

let of_bytes width b =
  let nbytes = (width + 7) / 8 in
  if Bytes.length b < nbytes then invalid_arg "Bitmap.of_bytes: too short";
  let t = create width in
  let nwords = Array.length t.words in
  for j = 0 to nbytes - 1 do
    let v = Char.code (Bytes.unsafe_get b j) in
    if v <> 0 then begin
      let pos = 8 * j in
      let wi = pos / word_bits and off = pos mod word_bits in
      t.words.(wi) <- t.words.(wi) lor (v lsl off);
      if off > word_bits - 8 && wi + 1 < nwords then
        t.words.(wi + 1) <- t.words.(wi + 1) lor (v lsr (word_bits - off))
    end
  done;
  (* Padding bits of the last byte must not survive (invariant: bits past
     [width] stay zero). *)
  let r = width mod word_bits in
  if r <> 0 then begin
    let last = (width - 1) / word_bits in
    t.words.(last) <- t.words.(last) land ((1 lsl r) - 1)
  end;
  t

let to_string t = String.init t.width (fun i -> if get t i then '1' else '0')
let pp ppf t = Format.pp_print_string ppf (to_string t)
