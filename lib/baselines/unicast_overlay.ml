type cost = { transmissions : int; source_packets : int }

let path_links topo ~src ~dst =
  if src = dst then 0
  else begin
    let sl = Topology.leaf_of_host topo src in
    let dl = Topology.leaf_of_host topo dst in
    if sl = dl then 2
    else if Topology.pod_of_leaf topo sl = Topology.pod_of_leaf topo dl then 4
    else 6
  end

let unicast tree ~sender =
  let topo = tree.Tree.topo in
  let transmissions = ref 0 in
  let copies = ref 0 in
  Tree.iter_members
    (fun h ->
      if h <> sender then begin
        transmissions := !transmissions + path_links topo ~src:sender ~dst:h;
        incr copies
      end)
    tree;
  { transmissions = !transmissions; source_packets = !copies }

let overlay tree ~sender =
  let topo = tree.Tree.topo in
  let sl = Topology.leaf_of_host topo sender in
  let transmissions = ref 0 in
  let source_packets = ref 0 in
  List.iter
    (fun (leaf, bm) ->
      let members =
        Bitmap.to_list bm
        |> List.map (fun port -> (leaf * topo.Topology.hosts_per_leaf) + port)
        |> List.filter (fun h -> h <> sender)
      in
      match members with
      | [] -> ()
      | relay :: rest ->
          if leaf = sl then begin
            (* The source relays for its own leaf: direct local unicasts. *)
            List.iter
              (fun h ->
                transmissions := !transmissions + path_links topo ~src:sender ~dst:h;
                incr source_packets)
              (relay :: rest)
          end
          else begin
            (* One copy to the relay, which fans out under its leaf. *)
            transmissions := !transmissions + path_links topo ~src:sender ~dst:relay;
            incr source_packets;
            List.iter
              (fun h ->
                transmissions := !transmissions + path_links topo ~src:relay ~dst:h)
              rest
          end)
    tree.Tree.leaf_bitmaps;
  { transmissions = !transmissions; source_packets = !source_packets }

let overhead_vs_ideal tree ~sender cost =
  let ideal = Tree.ideal_link_transmissions tree ~sender in
  float_of_int (cost.transmissions - ideal) /. float_of_int ideal
