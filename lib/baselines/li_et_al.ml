type table = (string, int) Hashtbl.t
(* aggregated entries: port-set key -> number of groups sharing it *)

type t = {
  topo : Topology.t;
  leaf_tables : table array;
  spine_tables : table array;
  core_tables : table array;
  mutable groups : int;
}

let create topo =
  {
    topo;
    leaf_tables = Array.init (Topology.num_leaves topo) (fun _ -> Hashtbl.create 16);
    spine_tables = Array.init (Topology.num_spines topo) (fun _ -> Hashtbl.create 16);
    core_tables =
      Array.init (max 1 (Topology.num_cores topo)) (fun _ -> Hashtbl.create 16);
    groups = 0;
  }

let hash_group g =
  let z = (g * 0x9E3779B9) lxor 0x5bd1e995 in
  abs ((z lxor (z lsr 13)) * 0xC2B2AE35)

let plane_of_group t g = hash_group g mod t.topo.Topology.spines_per_pod

let core_of_group t g =
  let cpp = t.topo.Topology.cores_per_plane in
  if cpp = 0 then 0 else (plane_of_group t g * cpp) + (hash_group g / 7 mod cpp)

let key bm = Bytes.to_string (Bitmap.to_bytes bm)

(* The pinned tree of a group as (switch table, switch id, port-set key)
   triples. *)
let pinned_entries t group tree =
  let plane = plane_of_group t group in
  let leaf_entries =
    List.map
      (fun (l, bm) -> (`Leaf, l, key bm))
      tree.Tree.leaf_bitmaps
  in
  let spine_entries =
    List.map
      (fun (p, bm) ->
        (`Spine, (p * t.topo.Topology.spines_per_pod) + plane, key bm))
      tree.Tree.spine_bitmaps
  in
  let core_entries =
    if Tree.pod_count tree > 1 then
      [ (`Core, core_of_group t group, key tree.Tree.core_bitmap) ]
    else []
  in
  leaf_entries @ spine_entries @ core_entries

let table_of t = function
  | `Leaf, id -> t.leaf_tables.(id)
  | `Spine, id -> t.spine_tables.(id)
  | `Core, id -> t.core_tables.(id)

let incr_entry tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let decr_entry tbl k =
  match Hashtbl.find_opt tbl k with
  | None -> ()
  | Some 1 -> Hashtbl.remove tbl k
  | Some n -> Hashtbl.replace tbl k (n - 1)

let add_group t ~group tree =
  List.iter
    (fun (layer, id, k) -> incr_entry (table_of t (layer, id)) k)
    (pinned_entries t group tree);
  t.groups <- t.groups + 1

let remove_group t ~group tree =
  List.iter
    (fun (layer, id, k) -> decr_entry (table_of t (layer, id)) k)
    (pinned_entries t group tree);
  t.groups <- t.groups - 1

type touch = { leaves : int list; spines : int list; cores : int list }

let update t ~group ~old_tree ~new_tree =
  let old_entries =
    match old_tree with Some tr -> pinned_entries t group tr | None -> []
  in
  let new_entries =
    match new_tree with Some tr -> pinned_entries t group tr | None -> []
  in
  (match old_tree with Some tr -> remove_group t ~group tr | None -> ());
  (match new_tree with Some tr -> add_group t ~group tr | None -> ());
  (* A switch's state changes when the group's port set there appears,
     vanishes, or differs; and because the scheme assigns local multicast
     addresses by aggregation, any such change forces the group's address to
     be reassigned — rewriting the entry on EVERY switch of the old and new
     trees (the cascading updates the paper criticizes). *)
  let find entries layer id =
    List.find_map
      (fun (l, i, k) -> if l = layer && i = id then Some k else None)
      entries
  in
  let ids entries = List.map (fun (l, i, _) -> (l, i)) entries in
  let layer_rank = function `Leaf -> 0 | `Spine -> 1 | `Core -> 2 in
  let compare_site (l1, i1) (l2, i2) =
    match Int.compare (layer_rank l1) (layer_rank l2) with
    | 0 -> Int.compare i1 i2
    | c -> c
  in
  let all = List.sort_uniq compare_site (ids old_entries @ ids new_entries) in
  let any_change =
    List.exists
      (fun (layer, id) -> find old_entries layer id <> find new_entries layer id)
      all
  in
  let changed = if any_change then all else [] in
  {
    leaves =
      List.filter_map (function `Leaf, id -> Some id | _ -> None) changed;
    spines =
      List.filter_map (function `Spine, id -> Some id | _ -> None) changed;
    cores =
      List.filter_map (function `Core, id -> Some id | _ -> None) changed;
  }

let leaf_entries t = Array.map Hashtbl.length t.leaf_tables
let spine_entries t = Array.map Hashtbl.length t.spine_tables
let core_entries t = Array.map Hashtbl.length t.core_tables
let flow_entries t = t.groups
