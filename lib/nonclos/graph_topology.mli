(** Non-Clos, flat switch topologies (§5.1.2's closing discussion).

    The paper argues Elmo can encode multicast on expander-style datacenter
    topologies: a {e symmetric} network (Xpander-like) still supports a
    million groups within the 325-byte budget, while {e asymmetric} random
    graphs (Jellyfish) share bitmaps poorly. We model both as d-regular
    graphs of top-of-rack switches, each also serving [hosts_per_switch]
    hosts:

    - {!xpander}: a circulant graph (switch [i] links to [i ± 1 .. i ± d/2]
      mod n) — vertex-transitive, so port [j] means the same "direction" at
      every switch, which is the symmetry that makes bitmap sharing likely.
      (The real Xpander uses random k-lifts; the circulant captures the
      symmetry property the paper's argument rests on.)
    - {!jellyfish}: a seeded random d-regular graph (pairing model with edge
      swaps), whose arbitrary port numbering destroys sharing opportunities.

    Ports [0 .. degree-1] of a switch are network links;
    ports [degree .. degree+hosts_per_switch-1] are host links. *)

type t = private {
  num_switches : int;
  degree : int;
  hosts_per_switch : int;
  adj : int array array;  (** [adj.(s).(port)] = neighbour switch *)
}

exception Construction_failed of string
(** Raised by {!jellyfish} when the pairing model cannot produce a simple
    d-regular graph after its swap/retry budget (pathological
    [switches]/[degree] combinations). *)

exception Disconnected of string
(** Raised by {!bfs_parents} when the graph does not connect to [root] —
    possible for an unlucky jellyfish seed, never for an xpander. *)

val xpander : switches:int -> degree:int -> hosts_per_switch:int -> t
(** Raises [Invalid_argument] if [degree] is odd, not positive, or
    [>= switches]. *)

val jellyfish : Rng.t -> switches:int -> degree:int -> hosts_per_switch:int -> t
(** Raises [Invalid_argument] on infeasible parameters
    ([switches * degree] odd, or [degree >= switches]). *)

val num_hosts : t -> int
val switch_of_host : t -> int -> int
val host_port : t -> int -> int
(** Port index of a host on its switch (in [degree ..]). *)

val port_width : t -> int
(** Bitmap width of a p-rule: [degree + hosts_per_switch]. *)

val id_bits : t -> int

val neighbour : t -> switch:int -> port:int -> int
(** Raises [Invalid_argument] for host ports. *)

val port_towards : t -> switch:int -> neighbour:int -> int
(** Inverse of {!neighbour}. Raises [Not_found] if not adjacent. *)

val bfs_parents : t -> root:int -> int array
(** [parents.(s)] is the BFS predecessor of switch [s] ([-1] at the root).
    Raises {!Disconnected} if the graph is disconnected. *)

val nearest_switches : t -> root:int -> int -> int list
(** The [n] switches closest to [root] in hop distance (BFS order, [root]
    first). Raises [Invalid_argument] if [n] exceeds the switch count. *)

val is_regular : t -> bool
(** Every switch has exactly [degree] distinct network neighbours and no
    self-loops (used by tests). *)
