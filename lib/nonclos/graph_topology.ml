type t = {
  num_switches : int;
  degree : int;
  hosts_per_switch : int;
  adj : int array array;
}

exception Construction_failed of string
exception Disconnected of string

let validate_params ~switches ~degree ~hosts_per_switch =
  if switches <= 0 then invalid_arg "Graph_topology: switches must be positive";
  if degree <= 0 then invalid_arg "Graph_topology: degree must be positive";
  if degree >= switches then invalid_arg "Graph_topology: degree >= switches";
  if hosts_per_switch <= 0 then
    invalid_arg "Graph_topology: hosts_per_switch must be positive"

let xpander ~switches ~degree ~hosts_per_switch =
  validate_params ~switches ~degree ~hosts_per_switch;
  if degree mod 2 <> 0 then invalid_arg "Graph_topology.xpander: degree must be even";
  (* Circulant with geometrically spaced offsets (a Cayley graph of Z_n):
     vertex-transitive — port [2k] means "+offset_k" at every switch — with
     logarithmic diameter, the two properties the paper's symmetric-expander
     argument needs. Offsets grow as n^(k / (d/2)), deduplicated. *)
  let half = degree / 2 in
  let offsets = Array.make half 0 in
  let prev = ref 0 in
  for k = 0 to half - 1 do
    let geometric =
      int_of_float
        (Float.round
           (Float.pow (float_of_int switches) (float_of_int k /. float_of_int half)))
    in
    let off = min ((switches - 1) / 2) (max (!prev + 1) geometric) in
    offsets.(k) <- off;
    prev := off
  done;
  if Array.length (Array.of_seq (List.to_seq (List.sort_uniq compare (Array.to_list offsets)))) < half
  then invalid_arg "Graph_topology.xpander: too dense for distinct offsets";
  let adj =
    Array.init switches (fun i ->
        Array.init degree (fun port ->
            let offset = offsets.(port / 2) in
            if port mod 2 = 0 then (i + offset) mod switches
            else (i - offset + switches) mod switches))
  in
  { num_switches = switches; degree; hosts_per_switch; adj }

let jellyfish rng ~switches ~degree ~hosts_per_switch =
  validate_params ~switches ~degree ~hosts_per_switch;
  if switches * degree mod 2 <> 0 then
    invalid_arg "Graph_topology.jellyfish: switches * degree must be even";
  (* Pairing model: shuffle stubs, pair them up, then repair self-loops and
     parallel edges with random edge swaps. *)
  let stubs = Array.make (switches * degree) 0 in
  let idx = ref 0 in
  for s = 0 to switches - 1 do
    for _ = 1 to degree do
      stubs.(!idx) <- s;
      incr idx
    done
  done;
  let edges = Array.make (switches * degree / 2) (0, 0) in
  let seen = Hashtbl.create (Array.length edges * 2) in
  let edge_key a b = (min a b * switches) + max a b in
  let bad e = fst e = snd e || Hashtbl.mem seen (edge_key (fst e) (snd e)) in
  let build () =
    Hashtbl.reset seen;
    Rng.shuffle rng stubs;
    for i = 0 to Array.length edges - 1 do
      edges.(i) <- (stubs.(2 * i), stubs.((2 * i) + 1))
    done;
    (* Repair pass: swap endpoints of conflicting edges with random others.
       Re-run from scratch if repair stalls (vanishingly rare for d << n). *)
    let attempts = ref 0 in
    let ok = ref false in
    while (not !ok) && !attempts < 100 * Array.length edges do
      Hashtbl.reset seen;
      let conflict = ref None in
      Array.iteri
        (fun i e ->
          if !conflict = None then
            if bad e then conflict := Some i
            else Hashtbl.replace seen (edge_key (fst e) (snd e)) ())
        edges;
      match !conflict with
      | None -> ok := true
      | Some i ->
          incr attempts;
          let j = Rng.int rng (Array.length edges) in
          let a1, a2 = edges.(i) and b1, b2 = edges.(j) in
          edges.(i) <- (a1, b2);
          edges.(j) <- (b1, a2)
    done;
    !ok
  in
  let rec try_build n =
    if n = 0 then
      raise
        (Construction_failed
           "Graph_topology.jellyfish: could not build a simple graph")
    else if build () then ()
    else try_build (n - 1)
  in
  try_build 20;
  let adj = Array.init switches (fun _ -> Array.make degree (-1)) in
  let fill = Array.make switches 0 in
  Array.iter
    (fun (a, b) ->
      adj.(a).(fill.(a)) <- b;
      fill.(a) <- fill.(a) + 1;
      adj.(b).(fill.(b)) <- a;
      fill.(b) <- fill.(b) + 1)
    edges;
  { num_switches = switches; degree; hosts_per_switch; adj }

let num_hosts t = t.num_switches * t.hosts_per_switch

let switch_of_host t h =
  if h < 0 || h >= num_hosts t then invalid_arg "Graph_topology: host out of range";
  h / t.hosts_per_switch

let host_port t h =
  if h < 0 || h >= num_hosts t then invalid_arg "Graph_topology: host out of range";
  t.degree + (h mod t.hosts_per_switch)

let port_width t = t.degree + t.hosts_per_switch
let id_bits t = Topology.bits_needed t.num_switches

let neighbour t ~switch ~port =
  if port < 0 || port >= t.degree then
    invalid_arg "Graph_topology.neighbour: not a network port";
  t.adj.(switch).(port)

let port_towards t ~switch ~neighbour =
  let rec go port =
    if port >= t.degree then raise Not_found
    else if t.adj.(switch).(port) = neighbour then port
    else go (port + 1)
  in
  go 0

let bfs_parents t ~root =
  let parents = Array.make t.num_switches (-2) in
  parents.(root) <- -1;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    Array.iter
      (fun n ->
        if parents.(n) = -2 then begin
          parents.(n) <- s;
          Queue.add n q
        end)
      t.adj.(s)
  done;
  if Array.exists (fun p -> p = -2) parents then
    raise (Disconnected "Graph_topology.bfs_parents: disconnected graph");
  parents

let nearest_switches t ~root n =
  if n > t.num_switches then invalid_arg "Graph_topology.nearest_switches";
  let seen = Array.make t.num_switches false in
  seen.(root) <- true;
  let q = Queue.create () in
  Queue.add root q;
  let out = ref [] in
  let count = ref 0 in
  while !count < n && not (Queue.is_empty q) do
    let s = Queue.pop q in
    out := s :: !out;
    incr count;
    Array.iter
      (fun nb ->
        if not seen.(nb) then begin
          seen.(nb) <- true;
          Queue.add nb q
        end)
      t.adj.(s)
  done;
  List.rev !out

let is_regular t =
  Array.for_all
    (fun row ->
      Array.length row = t.degree
      && Array.for_all (fun n -> n >= 0 && n < t.num_switches) row
      && List.length (List.sort_uniq compare (Array.to_list row)) = t.degree)
    t.adj
  && Array.for_all Fun.id
       (Array.mapi (fun i row -> not (Array.mem i row)) t.adj)
