module Flat_tree = struct
  type t = {
    topo : Graph_topology.t;
    root : int;
    bitmaps : (int * Bitmap.t) list;
    members : int array;
  }

  let of_members topo ~root member_list =
    if member_list = [] then invalid_arg "Flat_tree.of_members: empty group";
    let members = Array.of_list (List.sort_uniq compare member_list) in
    Array.iter
      (fun h ->
        if h < 0 || h >= Graph_topology.num_hosts topo then
          invalid_arg "Flat_tree.of_members: host out of range")
      members;
    let parents = Graph_topology.bfs_parents topo ~root in
    let width = Graph_topology.port_width topo in
    let tbl = Hashtbl.create 64 in
    let bitmap_of s =
      match Hashtbl.find_opt tbl s with
      | Some bm -> bm
      | None ->
          let bm = Bitmap.create width in
          Hashtbl.add tbl s bm;
          bm
    in
    (* Walk each member's path to the root, marking child-facing ports. *)
    Array.iter
      (fun h ->
        let s = Graph_topology.switch_of_host topo h in
        Bitmap.set (bitmap_of s) (Graph_topology.host_port topo h);
        let rec up child =
          let parent = parents.(child) in
          if parent >= 0 then begin
            let bm = bitmap_of parent in
            let port = Graph_topology.port_towards topo ~switch:parent ~neighbour:child in
            if not (Bitmap.get bm port) then begin
              Bitmap.set bm port;
              up parent
            end
            else ()
            (* already marked: the rest of the path is shared *)
          end
        in
        up s)
      members;
    let bitmaps =
      Hashtbl.fold (fun s bm acc -> (s, bm) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    { topo; root; bitmaps; members }

  let transmissions t =
    (* Sender-host uplink + one traversal per set bit (each network bit is a
       switch-to-switch link, each host bit a delivery). *)
    1 + List.fold_left (fun acc (_, bm) -> acc + Bitmap.popcount bm) 0 t.bitmaps
end

type t = { tree : Flat_tree.t; rules : Clustering.result }

let encode ?(r = 0) ?(semantics = Params.Sum) ?(hmax = 64) ?(kmax = 2) _topo
    (tree : Flat_tree.t) =
  let rules =
    Clustering.run ~r ~semantics ~hmax ~kmax
      ~has_srule_space:(fun _ -> false)
      tree.Flat_tree.bitmaps
  in
  { tree; rules }

let header_bits t =
  let topo = t.tree.Flat_tree.topo in
  let width = Graph_topology.port_width topo in
  let idb = Graph_topology.id_bits topo in
  let rule_bits r = 1 + width + (List.length r.Prule.switches * (idb + 1)) in
  let rules = List.fold_left (fun acc r -> acc + rule_bits r) 0 t.rules.Clustering.prules in
  let default =
    match t.rules.Clustering.default with Some _ -> 1 + width | None -> 1
  in
  rules + 1 + default

let header_bytes t = (header_bits t + 7) / 8

let switches_per_rule t =
  match t.rules.Clustering.prules with
  | [] -> 0.0
  | prules ->
      let switches =
        List.fold_left (fun acc r -> acc + List.length r.Prule.switches) 0 prules
      in
      float_of_int switches /. float_of_int (List.length prules)

let covered t = Option.is_none t.rules.Clustering.default
