type t = {
  src_mac : int;
  dst_mac : int;
  src_ip : int32;
  dst_ip : int32;
  src_port : int;
  vni : int;
}

let eth_len = 14
let ip_len = 20
let udp_len = 8
let vxlan_len = 8
let overhead_bytes = eth_len + ip_len + udp_len + vxlan_len
let udp_port = 4789
let max_vni = 0xFFFFFF

let set16 b pos v =
  Bytes.set b pos (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (pos + 1) (Char.chr (v land 0xFF))

let get16 b pos =
  (Char.code (Bytes.get b pos) lsl 8) lor Char.code (Bytes.get b (pos + 1))

let set32 b pos v =
  set16 b pos (Int32.to_int (Int32.shift_right_logical v 16) land 0xFFFF);
  set16 b (pos + 2) (Int32.to_int v land 0xFFFF)

let get32 b pos =
  Int32.logor
    (Int32.shift_left (Int32.of_int (get16 b pos)) 16)
    (Int32.of_int (get16 b (pos + 2)))

let set_mac b pos v =
  for i = 0 to 5 do
    Bytes.set b (pos + i) (Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
  done

let get_mac b pos =
  let acc = ref 0 in
  for i = 0 to 5 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get b (pos + i))
  done;
  !acc

let ipv4_checksum b ~pos =
  let sum = ref 0 in
  for i = 0 to (ip_len / 2) - 1 do
    (* the checksum field itself (offset 10) counts as zero *)
    if i <> 5 then sum := !sum + get16 b (pos + (2 * i))
  done;
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let encode t ~inner =
  if t.vni < 0 || t.vni > max_vni then invalid_arg "Vxlan.encode: vni out of range"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  if t.src_port < 0 || t.src_port > 0xFFFF then
    invalid_arg "Vxlan.encode: src_port out of range"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  let total = overhead_bytes + Bytes.length inner in
  let b = Bytes.make total '\000' in
  (* Ethernet *)
  set_mac b 0 t.dst_mac;
  set_mac b 6 t.src_mac;
  set16 b 12 0x0800;
  (* IPv4 *)
  let ip = eth_len in
  Bytes.set b ip '\x45' (* version 4, IHL 5 *);
  set16 b (ip + 2) (total - eth_len);
  Bytes.set b (ip + 8) '\x40' (* TTL 64 *);
  Bytes.set b (ip + 9) '\x11' (* UDP *);
  set32 b (ip + 12) t.src_ip;
  set32 b (ip + 16) t.dst_ip;
  set16 b (ip + 10) (ipv4_checksum b ~pos:ip);
  (* UDP (checksum 0: permitted for VXLAN over IPv4) *)
  let udp = ip + ip_len in
  set16 b udp t.src_port;
  set16 b (udp + 2) udp_port;
  set16 b (udp + 4) (total - eth_len - ip_len);
  (* VXLAN *)
  let vx = udp + udp_len in
  Bytes.set b vx '\x08' (* I flag *);
  Bytes.set b (vx + 4) (Char.chr ((t.vni lsr 16) land 0xFF));
  Bytes.set b (vx + 5) (Char.chr ((t.vni lsr 8) land 0xFF));
  Bytes.set b (vx + 6) (Char.chr (t.vni land 0xFF));
  Bytes.blit inner 0 b overhead_bytes (Bytes.length inner);
  b

let decode b =
  if Bytes.length b < overhead_bytes then Error "packet shorter than outer stack"
  else begin
    let ip = eth_len in
    if get16 b 12 <> 0x0800 then Error "not IPv4"
    else if Bytes.get b ip <> '\x45' then Error "unexpected IP version/IHL"
    else if Bytes.get b (ip + 9) <> '\x11' then Error "not UDP"
    else if get16 b (ip + 10) <> ipv4_checksum b ~pos:ip then
      Error "bad IPv4 header checksum"
    else begin
      let udp = ip + ip_len in
      if get16 b (udp + 2) <> udp_port then Error "not VXLAN (UDP port)"
      else begin
        let vx = udp + udp_len in
        if Char.code (Bytes.get b vx) land 0x08 = 0 then Error "VXLAN I flag unset"
        else begin
          let vni =
            (Char.code (Bytes.get b (vx + 4)) lsl 16)
            lor (Char.code (Bytes.get b (vx + 5)) lsl 8)
            lor Char.code (Bytes.get b (vx + 6))
          in
          let t =
            {
              dst_mac = get_mac b 0;
              src_mac = get_mac b 6;
              src_ip = get32 b (ip + 12);
              dst_ip = get32 b (ip + 16);
              src_port = get16 b udp;
              vni;
            }
          in
          let inner =
            Bytes.sub b overhead_bytes (Bytes.length b - overhead_bytes)
          in
          Ok (t, inner)
        end
      end
    end
  end
