type rules = {
  header : Prule.header;
  blob : bytes;  (* pre-serialized header, written in one call *)
  parts : bytes list;  (* per-rule write units, for the unoptimized path *)
}

type bucket = {
  rate : float;  (* tokens per second *)
  burst : float;
  mutable tokens : float;
  mutable last : float;
}

type t = {
  fabric : Fabric.t;
  host : int;
  senders : (int, rules) Hashtbl.t;
  receivers : (int, int) Hashtbl.t;  (* group -> local member VMs *)
  limits : (int, bucket) Hashtbl.t;
  mutable policy_drops : int;
}

let create fabric ~host =
  let topo = Fabric.topology fabric in
  if host < 0 || host >= Topology.num_hosts topo then
    invalid_arg "Hypervisor.create: host out of range"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  {
    fabric;
    host;
    senders = Hashtbl.create 16;
    receivers = Hashtbl.create 16;
    limits = Hashtbl.create 4;
    policy_drops = 0;
  }

let host t = t.host

let install_sender t ~group header =
  let topo = Fabric.topology t.fabric in
  Hashtbl.replace t.senders group
    {
      header;
      blob = Header_codec.encode topo header;
      parts = Header_codec.encode_parts topo header;
    }

let remove_sender t ~group = Hashtbl.remove t.senders group

let install_receiver t ~group ~vms =
  if vms <= 0 then invalid_arg "Hypervisor.install_receiver: vms"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Hashtbl.replace t.receivers group vms

let remove_receiver t ~group = Hashtbl.remove t.receivers group

let set_rate_limit t ~group ~packets_per_second ~burst =
  if packets_per_second <= 0.0 || burst <= 0 then
    invalid_arg "Hypervisor.set_rate_limit"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  Hashtbl.replace t.limits group
    {
      rate = packets_per_second;
      burst = float_of_int burst;
      tokens = float_of_int burst;
      last = 0.0;
    }

let clear_rate_limit t ~group = Hashtbl.remove t.limits group

let admit t ~group ~now =
  match Hashtbl.find_opt t.limits group with
  | None -> true
  | Some b ->
      let elapsed = Float.max 0.0 (now -. b.last) in
      b.tokens <- Float.min b.burst (b.tokens +. (elapsed *. b.rate));
      b.last <- now;
      if b.tokens >= 1.0 then begin
        b.tokens <- b.tokens -. 1.0;
        true
      end
      else begin
        t.policy_drops <- t.policy_drops + 1;
        false
      end

let policy_drops t = t.policy_drops

let sender_groups t =
  Hashtbl.fold (fun g _ acc -> g :: acc) t.senders [] |> List.sort compare

let flow_rules t = Hashtbl.length t.senders + Hashtbl.length t.receivers

let encap t ~group ~payload =
  match Hashtbl.find_opt t.senders group with
  | None -> None
  | Some r ->
      let hl = Bytes.length r.blob in
      let packet = Bytes.create (hl + Bytes.length payload) in
      Bytes.blit r.blob 0 packet 0 hl;
      Bytes.blit payload 0 packet hl (Bytes.length payload);
      Some packet

let encap_per_rule t ~group ~payload =
  match Hashtbl.find_opt t.senders group with
  | None -> None
  | Some r ->
      let hl = List.fold_left (fun acc p -> acc + Bytes.length p) 0 r.parts in
      let packet = Bytes.create (hl + Bytes.length payload) in
      let pos = ref 0 in
      List.iter
        (fun part ->
          Bytes.blit part 0 packet !pos (Bytes.length part);
          pos := !pos + Bytes.length part)
        r.parts;
      Bytes.blit payload 0 packet !pos (Bytes.length payload);
      Some packet

(* Outer addressing derived from the host id: deterministic, collision-free
   within a fabric. *)
let mac_of_host h = 0x020000000000 lor h
let ip_of_host h = Int32.of_int (0x0A000000 lor h)

let encap_vxlan t ~group ~payload =
  match encap t ~group ~payload with
  | None -> None
  | Some inner ->
      let vx =
        {
          Vxlan.src_mac = mac_of_host t.host;
          dst_mac = 0x01005E000000 lor (group land 0x7FFFFF);
          src_ip = ip_of_host t.host;
          dst_ip = Int32.of_int (0xE0000000 lor (group land 0xFFFFFF));
          src_port = 49152 + (Ecmp.flow_hash ~group ~sender:t.host mod 16384);
          vni = group land Vxlan.max_vni;
        }
      in
      Some (Vxlan.encode vx ~inner)

let decap_vxlan t packet =
  match Vxlan.decode packet with
  | Error _ -> None
  | Ok (vx, inner) -> (
      let group = vx.Vxlan.vni in
      match Hashtbl.find_opt t.receivers group with
      | None -> None
      | Some vms ->
          (* The network leaf strips the Elmo stack before the host (4.1);
             packets built locally by encap_vxlan still carry it, so strip
             symmetrically using the sender rule's known header length. *)
          let header_len =
            match Hashtbl.find_opt t.senders group with
            | Some r -> Bytes.length r.blob
            | None -> 0
          in
          let payload =
            Bytes.sub inner header_len (Bytes.length inner - header_len)
          in
          Some (group, vms, payload))

let send t ~group ~payload =
  match Hashtbl.find_opt t.senders group with
  | None -> None
  | Some r ->
      Some (Fabric.inject t.fabric ~sender:t.host ~group ~header:r.header ~payload)

let deliver t ~group =
  Option.value ~default:0 (Hashtbl.find_opt t.receivers group)
