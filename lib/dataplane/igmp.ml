type message_type =
  | Membership_query
  | Membership_report_v1
  | Membership_report_v2
  | Leave_group

let type_code = function
  | Membership_query -> 0x11
  | Membership_report_v1 -> 0x12
  | Membership_report_v2 -> 0x16
  | Leave_group -> 0x17

let type_of_code = function
  | 0x11 -> Some Membership_query
  | 0x12 -> Some Membership_report_v1
  | 0x16 -> Some Membership_report_v2
  | 0x17 -> Some Leave_group
  | _ -> None

type message = { msg_type : message_type; max_resp_time : int; group : int32 }

let checksum b =
  let sum = ref 0 in
  for i = 0 to (Bytes.length b / 2) - 1 do
    (* the checksum field (offset 2) counts as zero *)
    if i <> 1 then
      sum :=
        !sum
        + ((Char.code (Bytes.get b (2 * i)) lsl 8)
          lor Char.code (Bytes.get b ((2 * i) + 1)))
  done;
  while !sum > 0xFFFF do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let encode m =
  if m.max_resp_time < 0 || m.max_resp_time > 0xFF then
    invalid_arg "Igmp.encode: max_resp_time out of range"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  let b = Bytes.make 8 '\000' in
  Bytes.set b 0 (Char.chr (type_code m.msg_type));
  Bytes.set b 1 (Char.chr m.max_resp_time);
  for i = 0 to 3 do
    Bytes.set b (4 + i)
      (Char.chr (Int32.to_int (Int32.shift_right_logical m.group (8 * (3 - i))) land 0xFF))
  done;
  let c = checksum b in
  Bytes.set b 2 (Char.chr (c lsr 8));
  Bytes.set b 3 (Char.chr (c land 0xFF));
  b

let decode b =
  if Bytes.length b <> 8 then Error "IGMPv2 message must be 8 bytes"
  else begin
    match type_of_code (Char.code (Bytes.get b 0)) with
    | None -> Error "unknown IGMP type"
    | Some msg_type ->
        let stored =
          (Char.code (Bytes.get b 2) lsl 8) lor Char.code (Bytes.get b 3)
        in
        if stored <> checksum b then Error "bad IGMP checksum"
        else begin
          let group = ref 0l in
          for i = 0 to 3 do
            group :=
              Int32.logor
                (Int32.shift_left !group 8)
                (Int32.of_int (Char.code (Bytes.get b (4 + i))))
          done;
          Ok { msg_type; max_resp_time = Char.code (Bytes.get b 1); group = !group }
        end
  end

module Snooper = struct
  type t = {
    api : Tenant_api.t;
    members : (int * int, (int32, float) Hashtbl.t) Hashtbl.t;
        (* (tenant, vm) -> joined address -> last report time *)
  }

  let create api = { api; members = Hashtbl.create 64 }

  type outcome =
    | Joined of Controller.updates
    | Left of Controller.updates
    | Ignored of string

  let vm_groups t ~tenant ~vm =
    match Hashtbl.find_opt t.members (tenant, vm) with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.add t.members (tenant, vm) tbl;
        tbl

  let handle ?(now = 0.0) t ~tenant ~vm ~role packet =
    match decode packet with
    | Error e -> Ignored e
    | Ok { msg_type = Membership_query; _ } ->
        (* Answered from snooper state; nothing reaches the network — the
           broadcast-domain-wide query flood of classic IGMP is absorbed. *)
        Ignored "query answered from snooping state"
    | Ok { msg_type = Membership_report_v1 | Membership_report_v2; group; _ } -> (
        let joined = vm_groups t ~tenant ~vm in
        if Hashtbl.mem joined group then begin
          Hashtbl.replace joined group now;
          Ignored "already joined (report refresh)"
        end
        else begin
          match Tenant_api.join t.api ~tenant ~address:group ~vm ~role with
          | Ok updates ->
              Hashtbl.replace joined group now;
              Joined updates
          | Error e -> Ignored (Format.asprintf "%a" Tenant_api.pp_error e)
        end)
    | Ok { msg_type = Leave_group; group; _ } -> (
        let joined = vm_groups t ~tenant ~vm in
        if not (Hashtbl.mem joined group) then Ignored "not a member"
        else begin
          match Tenant_api.leave t.api ~tenant ~address:group ~vm with
          | Ok updates ->
              Hashtbl.remove joined group;
              Left updates
          | Error e -> Ignored (Format.asprintf "%a" Tenant_api.pp_error e)
        end)

  let expire t ~now ~ttl =
    let expired = ref [] in
    Hashtbl.iter
      (fun (tenant, vm) joined ->
        Hashtbl.iter
          (fun group last ->
            if now -. last > ttl then expired := (tenant, vm, group) :: !expired)
          joined)
      t.members;
    List.filter
      (fun (tenant, vm, group) ->
        match Tenant_api.leave t.api ~tenant ~address:group ~vm with
        | Ok _ | Error _ ->
            Hashtbl.remove (vm_groups t ~tenant ~vm) group;
            true)
      !expired
    |> List.sort compare

  let membership t ~tenant ~vm =
    match Hashtbl.find_opt t.members (tenant, vm) with
    | None -> []
    | Some tbl -> Hashtbl.fold (fun a _ acc -> a :: acc) tbl [] |> List.sort compare
end
