(** Packet-level model of the Elmo data plane (§4.1).

    Every network switch is simulated operationally: the serialized header
    is parsed at each hop exactly as a P4 parser would (match own identifier
    against the p-rule list of the packet's current stage), s-rules live in
    per-physical-switch group tables, default p-rules catch the rest, and
    each hop pops the layers the next hop no longer needs, shrinking the
    packet on the wire.

    This is the executable ground truth against which the analytic model in
    {!Traffic} is validated (they must produce identical transmission and
    header-byte counts), and the substrate the example applications run on. *)

type t

val create : Topology.t -> t
(** All group tables empty, no failures. *)

val topology : t -> Topology.t

(** {1 Group tables (s-rules)} *)

val install_leaf_srule : t -> leaf:int -> group:int -> Bitmap.t -> unit
val remove_leaf_srule : t -> leaf:int -> group:int -> unit

val install_pod_srule : t -> pod:int -> group:int -> Bitmap.t -> unit
(** Installs on every physical spine of the pod. *)

val remove_pod_srule : t -> pod:int -> group:int -> unit

val install_encoding : t -> group:int -> Encoding.t -> unit
(** Installs all s-rules of a group's encoding. *)

val remove_encoding : t -> group:int -> Encoding.t -> unit

val leaf_table_size : t -> int -> int
val spine_table_size : t -> int -> int
(** Physical spine's group-table occupancy. *)

val leaf_srule : t -> leaf:int -> group:int -> Bitmap.t option
(** Read-back of one leaf's group-table entry (the physical bitmap object,
    not a copy). *)

val pod_srule : t -> pod:int -> group:int -> Bitmap.t option
(** [Some bm] only when {e every} physical spine of the pod holds an entry
    for the group and all entries are equal — a partially-installed or
    divergent pod reads as absent, which is exactly what the controller's
    install verification needs to see. *)

val controller_hooks : t -> Controller.fabric_hooks
(** Perfect (never-failing) controller hooks over this fabric: installs and
    removals always succeed and the read-backs answer from the live tables.
    Wrap the result in a fault schedule ([Fault.hooks], lib/fault) to
    exercise the controller's retry/degradation machinery. *)

(** {1 Epoch fencing (controller failover)}

    The fabric arbitrates controller succession with fencing tokens: once
    {!set_fence} records a new primary's epoch, mutations issued through
    {!controller_hooks_at} with an older epoch are refused
    ([Error Refused]) — a paused ex-primary waking up mid-install cannot
    clobber the new primary's state. Reads answer normally at any epoch,
    so the fenced controller's read-back verification observes that its
    install never landed and degrades honestly. *)

val set_fence : t -> int -> unit
(** Admit mutations only from controllers of this epoch or newer.
    Monotonic; raises [Invalid_argument] on an attempt to lower it. *)

val fence_epoch : t -> int
(** Current fence ([0] until the first {!set_fence}). *)

val fenced_refusals : t -> int
(** Mutations refused below the fence since creation. *)

val controller_hooks_at : t -> epoch:int -> Controller.fabric_hooks
(** Like {!controller_hooks}, stamped with the issuing controller's epoch:
    mutations are refused while [epoch < fence_epoch]; reads always
    answer. [controller_hooks] itself is unstamped and never fenced. *)

val leaf_groups : t -> int -> int list
(** Group ids with an entry in the leaf's group table, ascending — the
    reconcile sweep's orphan scan. *)

val pod_groups : t -> int -> int list
(** Group ids with an entry on at least one physical spine of the pod,
    ascending. *)

(** {1 Incremental deployment (§7)} *)

val fail_link : t -> leaf:int -> plane:int -> unit
(** Takes down the (bidirectional) link between [leaf] and its pod's spine
    of the given plane; packets traversing it in either direction are lost.
    Raises [Invalid_argument] on an out-of-range plane. *)

val recover_link : t -> leaf:int -> plane:int -> unit

val set_leaf_legacy : t -> int -> bool -> unit
(** A legacy leaf cannot parse Elmo headers: it forwards on its group-table
    entry alone and drops on a miss. *)

val set_spine_legacy : t -> int -> bool -> unit
(** Per physical spine. *)

(** {1 Failures} *)

val fail_spine : t -> int -> unit
(** Marks a physical spine down: packets hashed onto it are lost. *)

val recover_spine : t -> int -> unit
val fail_core : t -> int -> unit
val recover_core : t -> int -> unit

(** {1 Injection} *)

type node =
  | Host_node of int
  | Leaf_node of int
  | Spine_node of int  (** physical spine *)
  | Core_node of int

type hop = { hop_from : node; hop_to : node; hop_header_bytes : int }
(** One link traversal, in transmission order — the per-packet telemetry an
    INT deployment would collect (§7 "Monitoring"). *)

type report = {
  delivered : (int * int) list;
      (** (host, copies) for every host that received the packet, ascending *)
  transmissions : int;  (** link traversals including host deliveries *)
  header_bytes : int;  (** Σ over traversals of Elmo header bytes carried *)
  lost : int;  (** copies dropped at failed switches *)
  trace : hop list;
      (** full per-hop path of every copy (INT-style); [transmissions]
          always equals [List.length trace] *)
}

val pp_node : Format.formatter -> node -> unit
val pp_trace : Format.formatter -> hop list -> unit
(** Traceroute-style rendering of a multicast packet's replication tree. *)

type telemetry = {
  tel_hop : payload:int -> hop -> unit;
      (** fired on every link traversal (including host deliveries), with
          the packet's payload size and the hop record the trace already
          allocated — an attached hook costs no extra per-hop allocation *)
  tel_packet : group:int -> sender:int -> bytes:int -> unit;
      (** fired once per {!inject}, after the traversal completes;
          [bytes] is the packet's total wire bytes,
          [payload * transmissions + header_bytes] *)
}
(** Passive per-traversal observation callbacks (lib/telemetry feeds its
    link time series and heavy-hitter sketch from these). Hooks never
    influence forwarding. *)

val set_telemetry : t -> telemetry option -> unit
(** Attach ([Some]) or detach ([None]) the telemetry hook. [create] starts
    with no hook; with none attached, [inject] behaves identically to a
    build without telemetry. *)

val inject :
  t -> sender:int -> group:int -> header:Prule.header -> payload:int -> report
(** Sends one packet from [sender]'s hypervisor with the given Elmo header.
    ECMP hashing is deterministic in [(group, sender)]. [payload] sizes the
    report and the telemetry byte counts; forwarding decisions never read
    it. *)

val deliveries_correct :
  report -> tree:Tree.t -> sender:int -> bool
(** True iff every group member other than the sender received exactly one
    copy (spurious deliveries to non-members are allowed — the receiving
    hypervisor discards them, §2). *)
