type node =
  | Host_node of int
  | Leaf_node of int
  | Spine_node of int
  | Core_node of int

type hop = { hop_from : node; hop_to : node; hop_header_bytes : int }

(* Per-traversal observation callbacks. [tel_hop] fires on every link
   traversal with the hop record the trace already allocated (so an attached
   hook adds no per-hop allocation of its own); [tel_packet] fires once at
   the end of each inject with the packet's total wire bytes. *)
type telemetry = {
  tel_hop : payload:int -> hop -> unit;
  tel_packet : group:int -> sender:int -> bytes:int -> unit;
}

type t = {
  topo : Topology.t;
  leaf_tables : (int, Bitmap.t) Hashtbl.t array;
  spine_tables : (int, Bitmap.t) Hashtbl.t array;  (* per physical spine *)
  spine_up : bool array;
  core_up : bool array;
  link_up : bool array;  (* leaf <-> pod spine links, index leaf * spp + plane *)
  leaf_legacy : bool array;  (* cannot parse Elmo headers (§7) *)
  spine_legacy : bool array;
  mutable telemetry : telemetry option;
  mutable fence_epoch : int;
      (* minimum controller epoch whose mutations the fabric accepts; a
         fenced ex-primary's late installs bounce off it *)
  mutable fenced : int;  (* mutations refused below the fence, cumulative *)
}

let create topo =
  {
    topo;
    leaf_tables = Array.init (Topology.num_leaves topo) (fun _ -> Hashtbl.create 8);
    spine_tables = Array.init (Topology.num_spines topo) (fun _ -> Hashtbl.create 8);
    spine_up = Array.make (Topology.num_spines topo) true;
    core_up = Array.make (max 1 (Topology.num_cores topo)) true;
    link_up =
      Array.make (Topology.num_leaves topo * topo.Topology.spines_per_pod) true;
    leaf_legacy = Array.make (Topology.num_leaves topo) false;
    spine_legacy = Array.make (Topology.num_spines topo) false;
    telemetry = None;
    fence_epoch = 0;
    fenced = 0;
  }

let topology t = t.topo
let set_telemetry t tel = t.telemetry <- tel

let install_leaf_srule t ~leaf ~group bm = Hashtbl.replace t.leaf_tables.(leaf) group bm
let remove_leaf_srule t ~leaf ~group = Hashtbl.remove t.leaf_tables.(leaf) group

let install_pod_srule t ~pod ~group bm =
  List.iter
    (fun s -> Hashtbl.replace t.spine_tables.(s) group bm)
    (Topology.spines_of_pod t.topo pod)

let remove_pod_srule t ~pod ~group =
  List.iter
    (fun s -> Hashtbl.remove t.spine_tables.(s) group)
    (Topology.spines_of_pod t.topo pod)

let install_encoding t ~group enc =
  List.iter
    (fun (leaf, bm) -> install_leaf_srule t ~leaf ~group bm)
    enc.Encoding.d_leaf.Clustering.srules;
  List.iter
    (fun (pod, bm) -> install_pod_srule t ~pod ~group bm)
    enc.Encoding.d_spine.Clustering.srules

let remove_encoding t ~group enc =
  List.iter
    (fun (leaf, _) -> remove_leaf_srule t ~leaf ~group)
    enc.Encoding.d_leaf.Clustering.srules;
  List.iter
    (fun (pod, _) -> remove_pod_srule t ~pod ~group)
    enc.Encoding.d_spine.Clustering.srules

let leaf_table_size t l = Hashtbl.length t.leaf_tables.(l)
let spine_table_size t s = Hashtbl.length t.spine_tables.(s)

let leaf_srule t ~leaf ~group = Hashtbl.find_opt t.leaf_tables.(leaf) group

let pod_srule t ~pod ~group =
  match Topology.spines_of_pod t.topo pod with
  | [] -> None
  | s :: rest -> (
      match Hashtbl.find_opt t.spine_tables.(s) group with
      | None -> None
      | Some bm ->
          let same s' =
            match Hashtbl.find_opt t.spine_tables.(s') group with
            | Some bm' -> Bitmap.equal bm bm'
            | None -> false
          in
          if List.for_all same rest then Some bm else None)

(* Perfect (never-failing) controller hooks over this fabric; wrap them in
   a fault schedule with [Fault.hooks] to exercise the reliable
   installation path. *)
let controller_hooks t =
  {
    Controller.install_leaf =
      (fun ~leaf ~group bm ->
        install_leaf_srule t ~leaf ~group bm;
        Ok ());
    remove_leaf =
      (fun ~leaf ~group ->
        remove_leaf_srule t ~leaf ~group;
        Ok ());
    install_pod =
      (fun ~pod ~group bm ->
        install_pod_srule t ~pod ~group bm;
        Ok ());
    remove_pod =
      (fun ~pod ~group ->
        remove_pod_srule t ~pod ~group;
        Ok ());
    read_leaf = (fun ~leaf ~group -> leaf_srule t ~leaf ~group);
    read_pod = (fun ~pod ~group -> pod_srule t ~pod ~group);
  }

(* {1 Epoch fencing (failover)}

   The fabric is the arbiter of controller succession: [set_fence e]
   records that a controller of epoch [e] has taken over, and the
   epoch-stamped hooks below refuse every mutation from an older epoch —
   the classic fencing-token scheme, so a paused ex-primary that wakes up
   mid-install cannot clobber the new primary's state. Reads answer
   normally at any epoch: the ex-primary's read-back verification then
   sees its install never landed and degrades, instead of wrongly
   believing it succeeded. *)

let set_fence t epoch =
  if epoch < t.fence_epoch then
    invalid_arg "Fabric.set_fence: fence epochs are monotonic"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  t.fence_epoch <- epoch

let fence_epoch t = t.fence_epoch
let fenced_refusals t = t.fenced

let controller_hooks_at t ~epoch =
  let admitted () = epoch >= t.fence_epoch in
  let refuse () =
    t.fenced <- t.fenced + 1;
    Error Controller.Refused
  in
  {
    Controller.install_leaf =
      (fun ~leaf ~group bm ->
        if not (admitted ()) then refuse ()
        else begin
          install_leaf_srule t ~leaf ~group bm;
          Ok ()
        end);
    remove_leaf =
      (fun ~leaf ~group ->
        if not (admitted ()) then refuse ()
        else begin
          remove_leaf_srule t ~leaf ~group;
          Ok ()
        end);
    install_pod =
      (fun ~pod ~group bm ->
        if not (admitted ()) then refuse ()
        else begin
          install_pod_srule t ~pod ~group bm;
          Ok ()
        end);
    remove_pod =
      (fun ~pod ~group ->
        if not (admitted ()) then refuse ()
        else begin
          remove_pod_srule t ~pod ~group;
          Ok ()
        end);
    read_leaf = (fun ~leaf ~group -> leaf_srule t ~leaf ~group);
    read_pod = (fun ~pod ~group -> pod_srule t ~pod ~group);
  }

(* {1 Table enumeration (reconcile sweeps)} *)

let leaf_groups t leaf =
  Hashtbl.fold (fun g _ acc -> g :: acc) t.leaf_tables.(leaf) []
  |> List.sort_uniq Int.compare

let pod_groups t pod =
  List.fold_left
    (fun acc s -> Hashtbl.fold (fun g _ acc -> g :: acc) t.spine_tables.(s) acc)
    []
    (Topology.spines_of_pod t.topo pod)
  |> List.sort_uniq Int.compare

let link_index t ~leaf ~plane =
  if plane < 0 || plane >= t.topo.Topology.spines_per_pod then
    invalid_arg "Fabric: plane out of range"; (* elmo-lint: allow exception-discipline — documented API-misuse guard *)
  (leaf * t.topo.Topology.spines_per_pod) + plane

let fail_link t ~leaf ~plane = t.link_up.(link_index t ~leaf ~plane) <- false
let recover_link t ~leaf ~plane = t.link_up.(link_index t ~leaf ~plane) <- true
let link_ok t ~leaf ~plane = t.link_up.((leaf * t.topo.Topology.spines_per_pod) + plane)

let set_leaf_legacy t l v = t.leaf_legacy.(l) <- v
let set_spine_legacy t s v = t.spine_legacy.(s) <- v

let fail_spine t s = t.spine_up.(s) <- false
let recover_spine t s = t.spine_up.(s) <- true
let fail_core t c = t.core_up.(c) <- false
let recover_core t c = t.core_up.(c) <- true

type report = {
  delivered : (int * int) list;
  transmissions : int;
  header_bytes : int;
  lost : int;
  trace : hop list;
}

let pp_node ppf = function
  | Host_node h -> Format.fprintf ppf "host %d" h
  | Leaf_node l -> Format.fprintf ppf "leaf %d" l
  | Spine_node s -> Format.fprintf ppf "spine %d" s
  | Core_node c -> Format.fprintf ppf "core %d" c

let pp_trace ppf hops =
  List.iter
    (fun h ->
      Format.fprintf ppf "%a -> %a (%d header bytes)@." pp_node h.hop_from
        pp_node h.hop_to h.hop_header_bytes)
    hops

(* Mutable accumulator threaded through one packet's traversal. *)
type acc = {
  mutable transmissions : int;
  mutable header_bytes : int;
  mutable lost : int;
  hosts : (int, int) Hashtbl.t;
  mutable trace : hop list;  (* reversed *)
  payload : int;
  tel : telemetry option;
}

let hop acc ~src ~dst bytes =
  acc.transmissions <- acc.transmissions + 1;
  acc.header_bytes <- acc.header_bytes + bytes;
  let h = { hop_from = src; hop_to = dst; hop_header_bytes = bytes } in
  acc.trace <- h :: acc.trace;
  match acc.tel with
  | None -> ()
  | Some tel -> tel.tel_hop ~payload:acc.payload h

let deliver acc ~src host =
  hop acc ~src ~dst:(Host_node host) 0;
  let n = Option.value ~default:0 (Hashtbl.find_opt acc.hosts host) in
  Hashtbl.replace acc.hosts host (n + 1)

(* Find the p-rule addressed to [id] by scanning the rule list, as the
   switch parser does (§4.1); then the group table; then the default. A
   legacy switch cannot parse the header at all: group table or drop. *)
let match_rule ~legacy rules id table group default =
  if legacy then Hashtbl.find_opt table group
  else
    match List.find_opt (fun r -> List.mem id r.Prule.switches) rules with
    | Some r -> Some r.Prule.bitmap
    | None -> (
        match Hashtbl.find_opt table group with
        | Some bm -> Some bm
        | None -> default)

let inject t ~sender ~group ~header ~payload =
  let topo = t.topo in
  let acc =
    {
      transmissions = 0;
      header_bytes = 0;
      lost = 0;
      hosts = Hashtbl.create 16;
      trace = [];
      payload;
      tel = t.telemetry;
    }
  in
  let hash = Ecmp.flow_hash ~group ~sender in
  let encode stage = Header_codec.encode_stage topo stage header in
  let sl = Topology.leaf_of_host topo sender in
  let sp = Topology.pod_of_leaf topo sl in

  (* Downstream leaf: parse the (already popped) header and forward. *)
  let at_leaf_down leaf bytes =
    let h = Header_codec.decode_stage topo Header_codec.After_d_spine bytes in
    let fb =
      match_rule ~legacy:t.leaf_legacy.(leaf) h.Prule.d_leaf leaf
        t.leaf_tables.(leaf) group h.Prule.d_leaf_default
    in
    match fb with
    | None -> ()
    | Some bm ->
        Bitmap.iter
          (fun port ->
            deliver acc ~src:(Leaf_node leaf)
              ((leaf * topo.Topology.hosts_per_leaf) + port))
          bm
  in
  (* Downstream spine (physical [s]) in pod [p]. *)
  let at_spine_down s p bytes =
    let h = Header_codec.decode_stage topo Header_codec.After_core bytes in
    let fb =
      match_rule ~legacy:t.spine_legacy.(s) h.Prule.d_spine p
        t.spine_tables.(s) group h.Prule.d_spine_default
    in
    match fb with
    | None -> ()
    | Some bm ->
        let to_leaf = encode Header_codec.After_d_spine in
        let plane = s mod topo.Topology.spines_per_pod in
        Bitmap.iter
          (fun port ->
            let leaf = (p * topo.Topology.leaves_per_pod) + port in
            hop acc ~src:(Spine_node s) ~dst:(Leaf_node leaf)
              (Bytes.length to_leaf);
            if link_ok t ~leaf ~plane then at_leaf_down leaf to_leaf
            else acc.lost <- acc.lost + 1)
          bm
  in
  let at_core c bytes =
    if not t.core_up.(c) then acc.lost <- acc.lost + 1
    else begin
      let h = Header_codec.decode_stage topo Header_codec.After_u_spine bytes in
      match h.Prule.core with
      | None -> ()
      | Some bm ->
          let plane = c / topo.Topology.cores_per_plane in
          let to_spine = encode Header_codec.After_core in
          Bitmap.iter
            (fun p ->
              let s = (p * topo.Topology.spines_per_pod) + plane in
              hop acc ~src:(Core_node c) ~dst:(Spine_node s)
                (Bytes.length to_spine);
              if t.spine_up.(s) then at_spine_down s p to_spine
              else acc.lost <- acc.lost + 1)
            bm
    end
  in
  (* Sender-pod spine (physical [s]): upstream processing. *)
  let at_spine_up s bytes =
    if not t.spine_up.(s) then acc.lost <- acc.lost + 1
    else begin
      let h = Header_codec.decode_stage topo Header_codec.After_u_leaf bytes in
      match h.Prule.u_spine with
      | None -> ()
      | Some u ->
          let to_leaf = encode Header_codec.After_d_spine in
          let plane = s mod topo.Topology.spines_per_pod in
          Bitmap.iter
            (fun port ->
              let leaf = (sp * topo.Topology.leaves_per_pod) + port in
              hop acc ~src:(Spine_node s) ~dst:(Leaf_node leaf)
                (Bytes.length to_leaf);
              if link_ok t ~leaf ~plane then at_leaf_down leaf to_leaf
              else acc.lost <- acc.lost + 1)
            u.Prule.down;
          let plane = s mod topo.Topology.spines_per_pod in
          let to_core = encode Header_codec.After_u_spine in
          let send_core c =
            hop acc ~src:(Spine_node s) ~dst:(Core_node c) (Bytes.length to_core);
            at_core c to_core
          in
          if u.Prule.multipath then begin
            if topo.Topology.cores_per_plane > 0 then
              send_core (Ecmp.core_choice topo ~hash ~plane)
          end
          else
            Bitmap.iter
              (fun port -> send_core ((plane * topo.Topology.cores_per_plane) + port))
              u.Prule.up
    end
  in
  (* Sender leaf: upstream processing of the full header. *)
  let at_leaf_up bytes =
    let h = Header_codec.decode_stage topo Header_codec.Full bytes in
    let u = h.Prule.u_leaf in
    Bitmap.iter
      (fun port ->
        deliver acc ~src:(Leaf_node sl)
          ((sl * topo.Topology.hosts_per_leaf) + port))
      u.Prule.down;
    let to_spine = encode Header_codec.After_u_leaf in
    let send_spine s =
      hop acc ~src:(Leaf_node sl) ~dst:(Spine_node s) (Bytes.length to_spine);
      if link_ok t ~leaf:sl ~plane:(s mod topo.Topology.spines_per_pod) then
        at_spine_up s to_spine
      else acc.lost <- acc.lost + 1
    in
    if u.Prule.multipath then
      send_spine ((sp * topo.Topology.spines_per_pod) + Ecmp.spine_choice topo ~hash)
    else if not (Bitmap.is_empty u.Prule.up) then
      Bitmap.iter
        (fun port -> send_spine ((sp * topo.Topology.spines_per_pod) + port))
        u.Prule.up
  in
  let full = encode Header_codec.Full in
  hop acc ~src:(Host_node sender) ~dst:(Leaf_node sl) (Bytes.length full);
  at_leaf_up full;
  (match t.telemetry with
  | None -> ()
  | Some tel ->
      tel.tel_packet ~group ~sender
        ~bytes:((payload * acc.transmissions) + acc.header_bytes));
  let delivered =
    Hashtbl.fold (fun h n l -> (h, n) :: l) acc.hosts []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    delivered;
    transmissions = acc.transmissions;
    header_bytes = acc.header_bytes;
    lost = acc.lost;
    trace = List.rev acc.trace;
  }

let deliveries_correct report ~tree ~sender =
  let expected =
    Tree.member_list tree |> List.filter (fun h -> h <> sender)
  in
  List.for_all
    (fun h ->
      match List.assoc_opt h report.delivered with
      | Some 1 -> true
      | Some _ | None -> false)
    expected
