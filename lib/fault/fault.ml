module Obs = Elmo_obs.Obs

type outcome = Applied | Timeout | Refused | Dropped

type schedule =
  | Reliable
  | Random of { rng : Rng.t; timeout : float; refuse : float; drop : float }
  | Scripted of outcome list

type stats = {
  attempts : int;
  applied : int;
  timeouts : int;
  refusals : int;
  drops : int;
}

type t = {
  fabric : Fabric.t;
  schedule : schedule;
  mutable script : outcome list;  (* Scripted consumption, in op order *)
  wedged_leaf : bool array;
  wedged_pod : bool array;
  mutable attempts : int;
  mutable applied : int;
  mutable timeouts : int;
  mutable refusals : int;
  mutable drops : int;
}

let create ?(schedule = Reliable) fabric =
  let topo = Fabric.topology fabric in
  {
    fabric;
    schedule;
    script = (match schedule with Scripted ops -> ops | Reliable | Random _ -> []);
    wedged_leaf = Array.make (Topology.num_leaves topo) false;
    wedged_pod = Array.make topo.Topology.pods false;
    attempts = 0;
    applied = 0;
    timeouts = 0;
    refusals = 0;
    drops = 0;
  }

let random rng ~rate =
  Random { rng; timeout = rate /. 2.0; refuse = rate /. 4.0; drop = rate /. 4.0 }

let fabric t = t.fabric

let stats t =
  {
    attempts = t.attempts;
    applied = t.applied;
    timeouts = t.timeouts;
    refusals = t.refusals;
    drops = t.drops;
  }

let wedge_leaf t l v = t.wedged_leaf.(l) <- v
let wedge_pod t p v = t.wedged_pod.(p) <- v

let next_outcome t =
  match t.schedule with
  | Reliable -> Applied
  | Random { rng; timeout; refuse; drop } ->
      let x = Rng.float rng 1.0 in
      if x < timeout then Timeout
      else if x < timeout +. refuse then Refused
      else if x < timeout +. refuse +. drop then Dropped
      else Applied
  | Scripted _ -> (
      match t.script with
      | [] -> Applied
      | o :: rest ->
          t.script <- rest;
          o)

(* One faulted mutation. A wedged switch refuses installs before the
   schedule is even consulted (and without consuming a scripted outcome);
   otherwise the schedule decides: [Applied] performs and acknowledges,
   [Timeout]/[Refused] fail without performing, and [Dropped] — the
   insidious one — acknowledges without performing, which only the
   controller's read-back verification can catch. *)
let mutate t ~wedged perform =
  t.attempts <- t.attempts + 1;
  Obs.incr "fault.attempts";
  if wedged then begin
    t.refusals <- t.refusals + 1;
    Obs.incr "fault.refused";
    Error Controller.Refused
  end
  else
    match next_outcome t with
    | Applied ->
        perform ();
        t.applied <- t.applied + 1;
        Obs.incr "fault.applied";
        Ok ()
    | Timeout ->
        t.timeouts <- t.timeouts + 1;
        Obs.incr "fault.timeout";
        Error Controller.Timed_out
    | Refused ->
        t.refusals <- t.refusals + 1;
        Obs.incr "fault.refused";
        Error Controller.Refused
    | Dropped ->
        t.drops <- t.drops + 1;
        Obs.incr "fault.dropped";
        Ok ()

let hooks t =
  {
    Controller.install_leaf =
      (fun ~leaf ~group bm ->
        mutate t ~wedged:t.wedged_leaf.(leaf) (fun () ->
            Fabric.install_leaf_srule t.fabric ~leaf ~group bm));
    remove_leaf =
      (fun ~leaf ~group ->
        mutate t ~wedged:false (fun () ->
            Fabric.remove_leaf_srule t.fabric ~leaf ~group));
    install_pod =
      (fun ~pod ~group bm ->
        mutate t ~wedged:t.wedged_pod.(pod) (fun () ->
            Fabric.install_pod_srule t.fabric ~pod ~group bm));
    remove_pod =
      (fun ~pod ~group ->
        mutate t ~wedged:false (fun () ->
            Fabric.remove_pod_srule t.fabric ~pod ~group));
    read_leaf = (fun ~leaf ~group -> Fabric.leaf_srule t.fabric ~leaf ~group);
    read_pod = (fun ~pod ~group -> Fabric.pod_srule t.fabric ~pod ~group);
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d attempts: %d applied, %d timeouts, %d refusals, %d drops" s.attempts
    s.applied s.timeouts s.refusals s.drops
