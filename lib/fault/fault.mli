(** Deterministic fault injection between {!Controller} and {!Fabric}.

    Wraps a fabric's perfect hooks so that every s-rule install or removal
    can transiently time out, be refused, or be {e silently dropped}
    (acknowledged but never applied) according to a seeded {!Rng}-driven
    schedule — or a scripted one for tests. Read-backs are never faulted:
    queries are idempotent and cheap to repeat, and they are what the
    controller's reliable installation path uses to detect every lie the
    mutation path tells.

    Orthogonally to the per-operation schedule, individual switches can be
    {e wedged}: their group table refuses all new installs (a wedged
    flow-table pipeline) while removals still work. Wedging is what drives
    the controller's graceful degradation — installs on a wedged switch
    exhaust their retry budget and the switch is excluded from s-rule
    eligibility. Removals are only ever {e transiently} faulty, so stale
    entries are always eventually removed or compensated; a switch whose
    management plane is permanently unreachable while holding state would
    need data-plane assistance (entry timeouts) that Elmo does not model. *)

type outcome =
  | Applied  (** performed and acknowledged *)
  | Timeout  (** not performed; [Error Timed_out] *)
  | Refused  (** not performed; [Error Refused] *)
  | Dropped  (** {b not} performed, yet acknowledged [Ok] *)

type schedule =
  | Reliable  (** every operation applies — the identity wrapper *)
  | Random of { rng : Rng.t; timeout : float; refuse : float; drop : float }
      (** independent per-operation outcome probabilities; the remainder
          applies *)
  | Scripted of outcome list
      (** consumed one outcome per mutation, in operation order; [Applied]
          once exhausted. Wedged-switch refusals do not consume outcomes. *)

type t

val create : ?schedule:schedule -> Fabric.t -> t
(** Default schedule: {!Reliable}. *)

val random : Rng.t -> rate:float -> schedule
(** Convenience mix for an overall fault rate: half the faults are
    timeouts, a quarter refusals, a quarter silent drops. *)

val hooks : t -> Controller.fabric_hooks
(** The faulted hooks to hand to {!Controller.create}. *)

val fabric : t -> Fabric.t

val wedge_leaf : t -> int -> bool -> unit
(** [wedge_leaf t l true] makes leaf [l] refuse all subsequent installs
    (removals unaffected) until un-wedged. *)

val wedge_pod : t -> int -> bool -> unit

type stats = {
  attempts : int;  (** mutations attempted through the wrapper *)
  applied : int;
  timeouts : int;
  refusals : int;  (** schedule refusals plus wedged-switch refusals *)
  drops : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
