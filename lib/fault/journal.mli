(** Append-only operation journal for crash-consistent recovery.

    Every externally-driven controller mutation is recorded as a pure value
    {e before} being applied, so that a crashed controller can be rebuilt as
    [restore latest_snapshot] + replay of the journal suffix written since
    that snapshot. Replay re-executes the controller's own entry points —
    the journal stores intent, not effects — so a recovered controller
    recomputes bit-identical encodings, ledger occupancy and churn counters
    (the controller is deterministic given the same op order). *)

type op =
  | Add_group of { group : int; members : (int * Controller.role) list }
  | Remove_group of { group : int }
  | Join of { group : int; host : int; role : Controller.role }
  | Leave of { group : int; host : int }
  | Fail_spine of int
  | Recover_spine of int
  | Fail_core of int
  | Recover_core of int
  | Fail_link of { leaf : int; plane : int }
  | Recover_link of { leaf : int; plane : int }

type entry = { e_op : op; e_pods : int list option }
(** An op tagged with the pods whose shard state it can touch — computed
    by the writer against the {e pre-op} controller state (group
    membership, failed switch location). [None] marks a global op (e.g. a
    core failure) that every shard-scoped replay must include. The tags
    drive {!Replica.recover_shard}; an untagged journal degrades
    gracefully — every op counts as global and shard recovery becomes full
    recovery. *)

type t

val create : ?observer:(op -> unit) -> unit -> t
(** [observer] (if given) is called with every op right after it is
    recorded — the tap the telemetry flight recorder rides on. It must not
    append to this journal. *)

val append : ?pods:int list -> t -> op -> unit
(** Appends the op, tagged with [pods] when given (global otherwise), then
    notifies the observer. *)

val length : t -> int
(** Total ops ever appended; journal positions are indices into this. *)

val to_list : t -> op list
(** In append order. *)

val entries : t -> entry list
(** In append order, with shard tags. *)

val suffix : t -> from:int -> op list
(** Ops appended at position [from] and later, in append order. *)

val suffix_entries : t -> from:int -> entry list
(** Like {!suffix}, with shard tags. *)

val apply : Controller.t -> op -> unit
(** Re-executes the op against a controller, discarding its report. *)

val write_entry : Byteio.Writer.t -> entry -> unit
(** Durable wire codec for one journal entry (the payload of a [Wire] op
    record). *)

val read_entry : topo:Topology.t -> Byteio.Reader.t -> entry
(** Inverse of {!write_entry}. Validates every switch/host/pod id against
    [topo] — replay re-executes controller entry points, which raise on
    out-of-range arguments, so a flipped bit must surface as
    {!Byteio.Reader.Corrupt} at load time rather than an exception
    mid-replay. *)

val pp_op : Format.formatter -> op -> unit
