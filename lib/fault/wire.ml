(* Record framing: len:u32 | crc:u32 | kind:u8 | epoch:u32 | seq:i64 |
   payload. The CRC covers kind..seq ++ payload (13 + len bytes), so the
   two prefix words are authenticated transitively: a corrupted [len]
   shifts the CRC window and fails the check (except by 1-in-2^32
   collision — which the matrix test's bit-flip arm measures, not
   assumes). *)

let magic = "ELMOWAL1"
let magic_len = 8
let prefix_len = 8 (* len + crc *)
let covered_len = 13 (* kind + epoch + seq *)
let header_len = prefix_len + covered_len

type t = {
  buf : Buffer.t;
  mutable next_seq : int;
  mutable last_epoch : int;
  mutable nrecords : int;
}

let create () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  { buf; next_seq = 0; last_epoch = 0; nrecords = 0 }

let kind_snapshot = 1
let kind_op = 2

let append_record t ~kind ~epoch payload =
  if epoch < 0 || epoch > 0xFFFFFFFF then
    invalid_arg "Wire: epoch out of u32 range";
  if epoch < t.last_epoch then invalid_arg "Wire: epoch regression";
  let body = Byteio.Writer.create () in
  Byteio.Writer.u8 body kind;
  Byteio.Writer.u32 body epoch;
  Byteio.Writer.int body t.next_seq;
  Byteio.Writer.raw body payload;
  let body = Byteio.Writer.to_bytes body in
  let crc = Byteio.crc32 body ~pos:0 ~len:(Bytes.length body) in
  let prefix = Byteio.Writer.create () in
  Byteio.Writer.u32 prefix (Bytes.length payload);
  Byteio.Writer.u32 prefix crc;
  Buffer.add_bytes t.buf (Byteio.Writer.to_bytes prefix);
  Buffer.add_bytes t.buf body;
  t.next_seq <- t.next_seq + 1;
  t.last_epoch <- epoch;
  t.nrecords <- t.nrecords + 1

let append_op t ~epoch entry =
  let w = Byteio.Writer.create () in
  Journal.write_entry w entry;
  append_record t ~kind:kind_op ~epoch (Byteio.Writer.to_bytes w)

let append_snapshot t ~epoch snap =
  let w = Byteio.Writer.create () in
  Controller.write_snapshot w snap;
  append_record t ~kind:kind_snapshot ~epoch (Byteio.Writer.to_bytes w)

let contents t = Buffer.to_bytes t.buf
let size t = Buffer.length t.buf
let records t = t.nrecords

(* {1 Loading} *)

type kind = Snapshot | Op

type record = {
  r_kind : kind;
  r_epoch : int;
  r_seq : int;
  r_off : int;
  r_payload_len : int;
}

type loaded = {
  l_snapshot : Controller.snapshot option;
  l_snapshot_epoch : int;
  l_replay_base_ops : int;
  l_suffix : Journal.entry list;
  l_epoch : int;
  l_records : record list;
  l_truncated_at : int option;
  l_dropped_snapshots : int;
}

let u32_at b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

(* Structural pass: accept records in order while framing holds, stop at
   the first violation. Payloads are not interpreted here. *)
let scan data =
  let total = Bytes.length data in
  let recs = ref [] in
  let truncated = ref None in
  let pos = ref magic_len in
  let prev_seq = ref (-1) in
  let prev_epoch = ref 0 in
  let scanning = ref true in
  while !scanning do
    if !pos = total then scanning := false
    else if total - !pos < header_len then (
      truncated := Some !pos;
      scanning := false)
    else
      let plen = u32_at data !pos in
      let crc = u32_at data (!pos + 4) in
      let body_pos = !pos + prefix_len in
      if plen > total - !pos - header_len then (
        truncated := Some !pos;
        scanning := false)
      else if Byteio.crc32 data ~pos:body_pos ~len:(covered_len + plen) <> crc
      then (
        truncated := Some !pos;
        scanning := false)
      else
        let kind = Char.code (Bytes.get data body_pos) in
        let epoch = u32_at data (body_pos + 1) in
        let seq64 = Bytes.get_int64_le data (body_pos + 5) in
        (* Compare sequence numbers as int64 — a flipped bit 63 would be
           invisible after Int64.to_int's truncation. *)
        if
          (not (Int64.equal seq64 (Int64.of_int (!prev_seq + 1))))
          || epoch < !prev_epoch
          || (kind <> kind_snapshot && kind <> kind_op)
        then (
          truncated := Some !pos;
          scanning := false)
        else (
          incr prev_seq;
          prev_epoch := epoch;
          recs :=
            {
              r_kind = (if kind = kind_snapshot then Snapshot else Op);
              r_epoch = epoch;
              r_seq = !prev_seq;
              r_off = !pos;
              r_payload_len = plen;
            }
            :: !recs;
          pos := !pos + header_len + plen)
  done;
  (List.rev !recs, !truncated, !prev_epoch)

let payload_reader data r =
  Byteio.Reader.of_bytes ~pos:(r.r_off + header_len) ~len:r.r_payload_len data

let decode_snapshot data r =
  (* Catch-all on purpose: a snapshot payload of hostile bytes must never
     take recovery down — any decoding exception means "this candidate is
     corrupt, fall back to the previous one". *)
  match
    let rd = payload_reader data r in
    let s = Controller.read_snapshot rd in
    Byteio.Reader.check (Byteio.Reader.remaining rd = 0);
    s
  with
  | s -> Some s
  | exception _ -> None

let decode_op ~topo data r =
  match
    let rd = payload_reader data r in
    let e = Journal.read_entry ~topo rd in
    Byteio.Reader.check (Byteio.Reader.remaining rd = 0);
    e
  with
  | e -> Some e
  | exception _ -> None

let load data =
  if
    Bytes.length data < magic_len
    || not (String.equal (Bytes.sub_string data 0 magic_len) magic)
  then Error "bad magic: not a wire log"
  else
    let records, truncated_at, max_epoch = scan data in
    (* Newest decodable snapshot wins; corrupt candidates are fallback
       hops, not truncation points. *)
    let rec choose dropped = function
      | [] -> (None, dropped)
      | r :: older -> (
          match r.r_kind with
          | Op -> choose dropped older
          | Snapshot -> (
              match decode_snapshot data r with
              | Some s -> (Some (s, r), dropped)
              | None -> choose (dropped + 1) older))
    in
    let chosen, dropped = choose 0 (List.rev records) in
    match chosen with
    | None ->
        Ok
          {
            l_snapshot = None;
            l_snapshot_epoch = 0;
            l_replay_base_ops = 0;
            l_suffix = [];
            l_epoch = max_epoch;
            l_records = records;
            l_truncated_at = truncated_at;
            l_dropped_snapshots = dropped;
          }
    | Some (snap, snap_rec) ->
        let topo = Controller.snapshot_topology snap in
        let base = ref 0 in
        let suffix = ref [] in
        let truncated = ref truncated_at in
        let replaying = ref true in
        List.iter
          (fun r ->
            match r.r_kind with
            | Snapshot -> ()
            | Op ->
              if r.r_seq < snap_rec.r_seq then incr base
              else if !replaying then
                match decode_op ~topo data r with
                | Some e -> suffix := e :: !suffix
                | None ->
                    (* A framed-but-undecodable op after the snapshot:
                       everything from here on is suspect — truncate. *)
                    truncated := Some r.r_off;
                    replaying := false)
          records;
        Ok
          {
            l_snapshot = Some snap;
            l_snapshot_epoch = snap_rec.r_epoch;
            l_replay_base_ops = !base;
            l_suffix = List.rev !suffix;
            l_epoch = max_epoch;
            l_records = records;
            l_truncated_at = !truncated;
            l_dropped_snapshots = dropped;
          }

let pp_loaded ppf l =
  Format.fprintf ppf
    "%d records, epoch %d, snapshot %s (epoch %d, %d fallback), %d base ops, \
     %d suffix ops%s"
    (List.length l.l_records) l.l_epoch
    (match l.l_snapshot with Some _ -> "yes" | None -> "NONE")
    l.l_snapshot_epoch l.l_dropped_snapshots l.l_replay_base_ops
    (List.length l.l_suffix)
    (match l.l_truncated_at with
    | None -> ""
    | Some off -> Printf.sprintf ", truncated at byte %d" off)

(* {1 Files} *)

let to_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc data)

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          let b = Bytes.create n in
          really_input ic b 0 n;
          Ok b)

(* {1 Crash simulation} *)

let truncate_at b n =
  let n = max 0 (min n (Bytes.length b)) in
  Bytes.sub b 0 n

let flip_bit b i =
  if i < 0 || i >= 8 * Bytes.length b then invalid_arg "Wire.flip_bit";
  let c = Bytes.copy b in
  let byte = i / 8 and bit = i mod 8 in
  Bytes.set c byte (Char.chr (Char.code (Bytes.get c byte) lxor (1 lsl bit)));
  c
