(** Crash-consistent controller replica: snapshot + journal-suffix replay.

    Couples a live {!Controller.t} with an append-only {!Journal} and a
    rolling {!Controller.snapshot}. Every mutation goes through {!apply},
    which journals the op before executing it and takes a fresh checkpoint
    every [snapshot_every] ops. {!crash} simulates a controller process
    crash: the live controller is discarded and rebuilt from the latest
    snapshot plus replay of the journal suffix. Because the controller is
    deterministic in its op order, the recovered instance is bit-identical
    (s-rule occupancy, per-group headers, churn counters) to one that never
    crashed — the property the crash-recovery test asserts across
    randomized crash points.

    Restoration itself does not touch the fabric ({!Controller.restore}
    re-emits nothing — switch state survives a controller crash); only the
    replayed suffix drives hooks, and those re-installs are idempotent. *)

type t

val create :
  ?snapshot_every:int ->
  ?fabric_hooks:Controller.fabric_hooks ->
  ?incremental:bool ->
  ?durable:bool ->
  ?observer:(Journal.op -> unit) ->
  Topology.t ->
  Params.t ->
  t
(** [snapshot_every] defaults to 64 ops between automatic checkpoints.
    [durable] (default [false]) attaches a {!Wire.t} log: a genesis
    snapshot is written at epoch 0, every {!apply} appends the op record
    {e before} executing it (write-ahead), and every checkpoint appends a
    snapshot record. [observer] taps the underlying journal (see
    {!Journal.create}) — the telemetry flight recorder attaches here. *)

val of_wire :
  ?snapshot_every:int ->
  ?fabric_hooks:Controller.fabric_hooks ->
  ?observer:(Journal.op -> unit) ->
  ?epoch:int ->
  Wire.loaded ->
  (t, string) result
(** Rebuild a durable replica from a loaded wire log: restore the chosen
    snapshot, replay the suffix (each op passes through the new journal
    first, so [observer] sees every replayed op), and seed a {e fresh}
    wire with the post-replay snapshot — the corrupt bytes are never
    appended to. [epoch] (default: the log's highest epoch) stamps the
    new log; a failover supervisor passes its bumped fencing epoch.
    [Error] when the log has no decodable snapshot, [epoch] regresses
    below the log's, or replay itself fails — never an exception. *)

val controller : t -> Controller.t
val journal : t -> Journal.t

val wire : t -> Wire.t option
(** The attached durable log, when [durable] (or {!of_wire}) created one. *)

val epoch : t -> int
(** The fencing epoch stamped on appended records. *)

val set_epoch : t -> int -> unit
(** Raise the fencing epoch (monotonic; raises [Invalid_argument] on
    regression). *)

val apply : t -> Journal.op -> unit
(** Journal (tagged with the pods the op can touch, computed against the
    pre-op state), execute, auto-checkpoint. *)

val checkpoint : t -> unit
(** Force a checkpoint at the current journal position. *)

val recovered : t -> Controller.t
(** A fresh controller rebuilt from the latest snapshot + journal suffix;
    the live controller is untouched (use this to {e compare} recovery
    against the never-crashed instance). *)

val recover_shard : t -> pod:int -> Controller.t
(** Shard-scoped recovery: rebuild from the latest snapshot, replaying
    only the journal-suffix ops whose pod tags are {e transitively
    connected} to [pod] (ops sharing a pod chain into one component) plus
    every global op. For groups whose members stay inside that component
    the result is bit-identical to {!recovered} — skipped ops touch only
    disjoint pods, which the per-pod commit confinement keeps invisible —
    while replaying a fraction of the suffix after localized churn.
    Out-of-component groups and global counters may differ. *)

val crash : t -> unit
(** Replace the live controller with {!recovered} — the crash itself. *)

val installed_config : t -> Installed_config.t
(** The live controller's {!Installed_config.t} view (for symbolic
    equivalence checks against {!recovered}). *)

val checkpoint_config : t -> Installed_config.t
(** The installed-configuration view of the {e latest checkpoint} — built
    straight from the snapshot, without restoring a controller. *)
