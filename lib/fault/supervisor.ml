module Obs = Elmo_obs.Obs

type reconcile = {
  sites_checked : int;
  reinstalled : int;
  orphans_removed : int;
  stale_kept : int;
  refused : int;
}

type outcome = {
  replica : Replica.t;
  loaded : Wire.loaded;
  epoch : int;
  reconcile : reconcile;
  blackholes : Verify.witness list;
}

(* Read back every s-rule site the recovered state expects; reinstall what
   diverged, remove what nothing explains. Stale-marked sites are the one
   asymmetry: the verifier compensates for them assuming {e presence}, so
   the sweep may reinstall over one but must never remove it. *)
let reconcile_sweep fabric (hooks : Controller.fabric_hooks)
    (cfg : Installed_config.t) =
  let topo = cfg.Installed_config.topo in
  let checked = ref 0
  and reinstalled = ref 0
  and orphans = ref 0
  and stale_kept = ref 0
  and refused = ref 0 in
  let count = function
    | Ok () -> incr reinstalled
    | Error (_ : Controller.install_error) -> incr refused
  in
  let expected = Hashtbl.create 256 in
  let stride =
    (2 * max (Topology.num_leaves topo) topo.Topology.pods) + 2
  in
  let key group site = (group * stride) + Srule_state.site_key site in
  List.iter
    (fun (gv : Installed_config.group_view) ->
      match gv.Installed_config.enc with
      | None -> ()
      | Some enc ->
          List.iter
            (fun (leaf, bm) ->
              incr checked;
              Hashtbl.replace expected (key gv.gid (Srule_state.Leaf leaf)) ();
              match Fabric.leaf_srule fabric ~leaf ~group:gv.gid with
              | Some actual when Bitmap.equal actual bm -> ()
              | _ ->
                  count
                    (hooks.Controller.install_leaf ~leaf ~group:gv.gid
                       (Bitmap.copy bm)))
            enc.Encoding.d_leaf.Clustering.srules;
          List.iter
            (fun (pod, bm) ->
              incr checked;
              Hashtbl.replace expected (key gv.gid (Srule_state.Pod pod)) ();
              match Fabric.pod_srule fabric ~pod ~group:gv.gid with
              | Some actual when Bitmap.equal actual bm -> ()
              | _ ->
                  count
                    (hooks.Controller.install_pod ~pod ~group:gv.gid
                       (Bitmap.copy bm)))
            enc.Encoding.d_spine.Clustering.srules)
    cfg.Installed_config.groups;
  List.iter
    (fun (group, site) ->
      Hashtbl.replace expected (key group site) ();
      let present =
        match site with
        | Srule_state.Leaf leaf ->
            Option.is_some (Fabric.leaf_srule fabric ~leaf ~group)
        | Srule_state.Pod pod ->
            Option.is_some (Fabric.pod_srule fabric ~pod ~group)
      in
      if present then incr stale_kept)
    cfg.Installed_config.stale_sites;
  let sweep_orphan site remove group =
    if not (Hashtbl.mem expected (key group site)) then
      match remove () with
      | Ok () -> incr orphans
      | Error (_ : Controller.install_error) -> incr refused
  in
  for leaf = 0 to Topology.num_leaves topo - 1 do
    List.iter
      (fun group ->
        sweep_orphan (Srule_state.Leaf leaf)
          (fun () -> hooks.Controller.remove_leaf ~leaf ~group)
          group)
      (Fabric.leaf_groups fabric leaf)
  done;
  for pod = 0 to topo.Topology.pods - 1 do
    List.iter
      (fun group ->
        sweep_orphan (Srule_state.Pod pod)
          (fun () -> hooks.Controller.remove_pod ~pod ~group)
          group)
      (Fabric.pod_groups fabric pod)
  done;
  {
    sites_checked = !checked;
    reinstalled = !reinstalled;
    orphans_removed = !orphans;
    stale_kept = !stale_kept;
    refused = !refused;
  }

(* Zero-blackhole proof: every sender's compiled delivery predicate must
   cover its receiver endpoints. [compile_sender = None] is the honest
   degrade — the hypervisor unicasts, nothing traverses the fabric. *)
let blackhole_sweep (cfg : Installed_config.t) =
  let ctx = Pred.create_ctx () in
  List.fold_left
    (fun acc (gv : Installed_config.group_view) ->
      List.fold_left
        (fun acc sender ->
          match
            Verify.compile_sender ctx cfg ~group:gv.Installed_config.gid ~sender
          with
          | None -> acc
          | Some big -> (
              let small =
                Verify.receiver_endpoints ctx cfg
                  ~group:gv.Installed_config.gid ~sender
              in
              match
                Verify.check_subsumes ~group:gv.Installed_config.gid ~big
                  ~small
              with
              | Ok () -> acc
              | Error w -> w :: acc))
        acc gv.Installed_config.senders)
    [] cfg.Installed_config.groups
  |> List.rev

let failover ?snapshot_every ?observer ~fabric data =
  match Wire.load data with
  | Error e -> Error e
  | Ok loaded -> (
      let epoch = loaded.Wire.l_epoch + 1 in
      (* Fence first: even if recovery fails below, the dead primary must
         not be able to mutate the fabric again. *)
      Fabric.set_fence fabric epoch;
      let hooks = Fabric.controller_hooks_at fabric ~epoch in
      match
        Replica.of_wire ?snapshot_every ~fabric_hooks:hooks ?observer ~epoch
          loaded
      with
      | Error e -> Error e
      | Ok replica ->
          Obs.with_span "supervisor.failover" @@ fun () ->
          let cfg = Replica.installed_config replica in
          let reconcile = reconcile_sweep fabric hooks cfg in
          Obs.observe "supervisor.reinstalled"
            (float_of_int reconcile.reinstalled);
          Obs.observe "supervisor.orphans_removed"
            (float_of_int reconcile.orphans_removed);
          (* Re-read the view: the sweep mutated the fabric, not the
             controller, but the proof must see the controller's final
             word. *)
          let blackholes = blackhole_sweep (Replica.installed_config replica) in
          Ok { replica; loaded; epoch; reconcile; blackholes })

let pp_reconcile ppf r =
  Format.fprintf ppf
    "%d sites checked, %d reinstalled, %d orphans removed, %d stale kept, %d \
     refused"
    r.sites_checked r.reinstalled r.orphans_removed r.stale_kept r.refused
