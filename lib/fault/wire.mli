(** Durable byte-level wire format for journals and snapshots.

    A wire log is the crash-safe persistent form of a {!Replica}: an
    8-byte magic ["ELMOWAL1"] followed by length-prefixed records, each
    carrying a CRC32 and a monotonic epoch/seq header.

    Record layout (all integers little-endian):
    {v
      len   : u32   payload length in bytes
      crc   : u32   CRC32 over kind..seq ++ payload
      kind  : u8    1 = snapshot, 2 = op
      epoch : u32   issuing controller's fencing epoch (non-decreasing)
      seq   : i64   record sequence number (strictly prev + 1, from 0)
      payload : len bytes
    v}

    {!load} is total over arbitrary bytes (modulo a recognizable magic):
    it scans records in order and {e truncates} — treats the log as ending
    — at the first torn or corrupt record: a short header, a length
    overrunning the buffer, a CRC mismatch, a sequence gap, an epoch
    regression, an unknown kind, or an op payload that fails validated
    decoding. Snapshot payloads are decoded lazily, newest first: a
    corrupt snapshot payload falls back to the previous good snapshot
    (counted in [dropped_snapshots]) rather than truncating the log.
    Recovery never guesses: a record is either replayed exactly or the log
    is explicitly shorter. *)

type t
(** An in-memory append-side log (the durable bytes under construction). *)

val create : unit -> t
(** An empty log: magic only, next seq 0. *)

val append_op : t -> epoch:int -> Journal.entry -> unit
val append_snapshot : t -> epoch:int -> Controller.snapshot -> unit
(** Append one record. Epochs must be non-decreasing across appends and
    [0 <= epoch < 2^32]; raises [Invalid_argument] otherwise. *)

val contents : t -> bytes
(** The log's current bytes (magic + records), a fresh copy. *)

val size : t -> int
(** Byte length of {!contents}. *)

val records : t -> int
(** Records appended so far. *)

(** {1 Loading} *)

type kind = Snapshot | Op

type record = {
  r_kind : kind;
  r_epoch : int;
  r_seq : int;
  r_off : int;  (** byte offset of the record's length field *)
  r_payload_len : int;
}

type loaded = {
  l_snapshot : Controller.snapshot option;
      (** newest snapshot whose payload decodes; [None] when no snapshot
          record survives — the log is unrecoverable *)
  l_snapshot_epoch : int;
      (** epoch of the chosen snapshot record (0 when none) *)
  l_replay_base_ops : int;
      (** structurally valid op records {e before} the chosen snapshot —
          ops its state already includes *)
  l_suffix : Journal.entry list;
      (** decoded op entries after the chosen snapshot, in order — the
          replay suffix *)
  l_epoch : int;  (** highest epoch among accepted records *)
  l_records : record list;
      (** every structurally accepted record, in order *)
  l_truncated_at : int option;
      (** byte offset where scanning stopped early ([None] = the whole
          log parsed); also set when an op payload after the chosen
          snapshot fails decoding — that op and everything after it are
          dropped *)
  l_dropped_snapshots : int;
      (** snapshot records whose payload failed decoding (fallback hops) *)
}

val load : bytes -> (loaded, string) result
(** Total over arbitrary input: [Error] only when the magic is missing
    (the bytes are not a wire log at all); every other corruption is
    expressed through truncation/fallback in the result. *)

val pp_loaded : Format.formatter -> loaded -> unit
(** One-line summary: records, suffix length, truncation, fallbacks. *)

(** {1 Files} *)

val to_file : string -> bytes -> unit
val of_file : string -> (bytes, string) result
(** [Error] with the system message when unreadable. *)

(** {1 Crash simulation}

    Deterministic byte-granularity corruption for the crash/corruption
    matrix: both are pure (fresh buffer, input untouched). *)

val truncate_at : bytes -> int -> bytes
(** First [n] bytes — a torn write. Clamped to [[0, length]]. *)

val flip_bit : bytes -> int -> bytes
(** Flip bit [i] (bit [i mod 8] of byte [i / 8]). Raises
    [Invalid_argument] out of range. *)
