(** Fenced primary/standby controller failover over a durable wire log.

    {!failover} is the standby's takeover sequence against a fabric whose
    switch state survived the primary's crash:

    + load the (possibly torn or corrupt) wire bytes ({!Wire.load} —
      truncation and snapshot fallback, never a guess);
    + bump the fencing epoch past anything the dead primary could have
      stamped and {!Fabric.set_fence} the fabric, so a paused ex-primary
      waking up mid-install is refused;
    + rebuild the controller ({!Replica.of_wire}) with hooks stamped at
      the new epoch;
    + {e reconcile}: read back every s-rule site the recovered state
      expects and reinstall divergent or missing entries (fresh bitmap
      copies — fabric state never aliases controller state), keep
      compensated stale entries (the verifier accounts for them — removal
      would be the unsound direction), and remove true orphans the
      recovered state knows nothing about;
    + prove the result: a per-group, per-sender zero-blackhole sweep
      ([Verify.check_subsumes] of receiver endpoints under the sender's
      compiled delivery predicate).

    The outcome reports everything a caller needs to decide whether the
    takeover is safe to serve from: what the log recovered, what the sweep
    repaired, and the (empty, or else damning) blackhole witness list. *)

type reconcile = {
  sites_checked : int;  (** expected s-rule sites read back *)
  reinstalled : int;  (** divergent or missing sites reinstalled *)
  orphans_removed : int;
      (** fabric entries no recovered group nor stale marker explains *)
  stale_kept : int;
      (** compensated stale entries found still present and left alone *)
  refused : int;
      (** reconcile mutations the fabric refused (0 unless re-fenced) *)
}

type outcome = {
  replica : Replica.t;  (** the new primary, durable at [epoch] *)
  loaded : Wire.loaded;  (** what the log yielded (truncation, fallback) *)
  epoch : int;  (** the new fencing epoch: log's highest + 1 *)
  reconcile : reconcile;
  blackholes : Verify.witness list;
      (** first missing delivery edge per failing (group, sender); empty
          is the zero-blackhole proof *)
}

val failover :
  ?snapshot_every:int ->
  ?observer:(Journal.op -> unit) ->
  fabric:Fabric.t ->
  bytes ->
  (outcome, string) result
(** [Error] when the bytes are not a wire log, the log has no decodable
    snapshot, or replay fails — the fabric is left fenced at the new epoch
    regardless (a standby that cannot recover must still shut the old
    primary out). Never raises. *)

val pp_reconcile : Format.formatter -> reconcile -> unit
