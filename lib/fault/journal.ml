type op =
  | Add_group of { group : int; members : (int * Controller.role) list }
  | Remove_group of { group : int }
  | Join of { group : int; host : int; role : Controller.role }
  | Leave of { group : int; host : int }
  | Fail_spine of int
  | Recover_spine of int
  | Fail_core of int
  | Recover_core of int
  | Fail_link of { leaf : int; plane : int }
  | Recover_link of { leaf : int; plane : int }

(* An op tagged with the pods whose shard state it can touch, computed by
   the writer against the pre-op controller state ([None] = global: the op
   can touch every shard). The tags drive shard-scoped recovery
   ([Replica.recover_shard]): an untagged journal degrades gracefully —
   every op is treated as global and shard recovery becomes full
   recovery. *)
type entry = { e_op : op; e_pods : int list option }

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable n : int;
  observer : (op -> unit) option;
}

let create ?observer () = { entries = []; n = 0; observer }

let append ?pods t op =
  t.entries <- { e_op = op; e_pods = pods } :: t.entries;
  t.n <- t.n + 1;
  match t.observer with None -> () | Some f -> f op

let length t = t.n
let entries t = List.rev t.entries
let to_list t = List.rev_map (fun e -> e.e_op) t.entries

let suffix_entries t ~from =
  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
  in
  drop from (entries t)

let suffix t ~from = List.map (fun e -> e.e_op) (suffix_entries t ~from)

let apply ctrl op =
  match op with
  | Add_group { group; members } ->
      ignore (Controller.add_group ctrl ~group members : Controller.updates)
  | Remove_group { group } ->
      ignore (Controller.remove_group ctrl ~group : Controller.updates)
  | Join { group; host; role } ->
      ignore (Controller.join ctrl ~group ~host ~role : Controller.updates)
  | Leave { group; host } ->
      ignore (Controller.leave ctrl ~group ~host : Controller.updates)
  | Fail_spine s ->
      ignore (Controller.fail_spine ctrl s : Controller.failure_report)
  | Recover_spine s ->
      ignore (Controller.recover_spine ctrl s : Controller.failure_report)
  | Fail_core c ->
      ignore (Controller.fail_core ctrl c : Controller.failure_report)
  | Recover_core c ->
      ignore (Controller.recover_core ctrl c : Controller.failure_report)
  | Fail_link { leaf; plane } ->
      ignore (Controller.fail_link ctrl ~leaf ~plane : Controller.failure_report)
  | Recover_link { leaf; plane } ->
      ignore
        (Controller.recover_link ctrl ~leaf ~plane : Controller.failure_report)

let pp_op ppf = function
  | Add_group { group; members } ->
      Format.fprintf ppf "add_group %d (%d members)" group (List.length members)
  | Remove_group { group } -> Format.fprintf ppf "remove_group %d" group
  | Join { group; host; _ } -> Format.fprintf ppf "join %d host %d" group host
  | Leave { group; host } -> Format.fprintf ppf "leave %d host %d" group host
  | Fail_spine s -> Format.fprintf ppf "fail_spine %d" s
  | Recover_spine s -> Format.fprintf ppf "recover_spine %d" s
  | Fail_core c -> Format.fprintf ppf "fail_core %d" c
  | Recover_core c -> Format.fprintf ppf "recover_core %d" c
  | Fail_link { leaf; plane } -> Format.fprintf ppf "fail_link %d.%d" leaf plane
  | Recover_link { leaf; plane } ->
      Format.fprintf ppf "recover_link %d.%d" leaf plane
