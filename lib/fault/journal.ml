type op =
  | Add_group of { group : int; members : (int * Controller.role) list }
  | Remove_group of { group : int }
  | Join of { group : int; host : int; role : Controller.role }
  | Leave of { group : int; host : int }
  | Fail_spine of int
  | Recover_spine of int
  | Fail_core of int
  | Recover_core of int
  | Fail_link of { leaf : int; plane : int }
  | Recover_link of { leaf : int; plane : int }

(* An op tagged with the pods whose shard state it can touch, computed by
   the writer against the pre-op controller state ([None] = global: the op
   can touch every shard). The tags drive shard-scoped recovery
   ([Replica.recover_shard]): an untagged journal degrades gracefully —
   every op is treated as global and shard recovery becomes full
   recovery. *)
type entry = { e_op : op; e_pods : int list option }

type t = {
  mutable entries : entry list;  (* newest first *)
  mutable n : int;
  observer : (op -> unit) option;
}

let create ?observer () = { entries = []; n = 0; observer }

let append ?pods t op =
  t.entries <- { e_op = op; e_pods = pods } :: t.entries;
  t.n <- t.n + 1;
  match t.observer with None -> () | Some f -> f op

let length t = t.n
let entries t = List.rev t.entries
let to_list t = List.rev_map (fun e -> e.e_op) t.entries

let suffix_entries t ~from =
  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
  in
  drop from (entries t)

let suffix t ~from = List.map (fun e -> e.e_op) (suffix_entries t ~from)

let apply ctrl op =
  match op with
  | Add_group { group; members } ->
      ignore (Controller.add_group ctrl ~group members : Controller.updates)
  | Remove_group { group } ->
      ignore (Controller.remove_group ctrl ~group : Controller.updates)
  | Join { group; host; role } ->
      ignore (Controller.join ctrl ~group ~host ~role : Controller.updates)
  | Leave { group; host } ->
      ignore (Controller.leave ctrl ~group ~host : Controller.updates)
  | Fail_spine s ->
      ignore (Controller.fail_spine ctrl s : Controller.failure_report)
  | Recover_spine s ->
      ignore (Controller.recover_spine ctrl s : Controller.failure_report)
  | Fail_core c ->
      ignore (Controller.fail_core ctrl c : Controller.failure_report)
  | Recover_core c ->
      ignore (Controller.recover_core ctrl c : Controller.failure_report)
  | Fail_link { leaf; plane } ->
      ignore (Controller.fail_link ctrl ~leaf ~plane : Controller.failure_report)
  | Recover_link { leaf; plane } ->
      ignore
        (Controller.recover_link ctrl ~leaf ~plane : Controller.failure_report)

(* {1 Durable wire codec}

   Ops cross the byte boundary validated against the topology: replay
   re-executes controller entry points, which raise on out-of-range
   arguments — a flipped bit must surface as a corrupt record at load
   time, not an exception mid-replay. *)

let write_role w = function
  | Controller.Sender -> Byteio.Writer.u8 w 0
  | Controller.Receiver -> Byteio.Writer.u8 w 1
  | Controller.Both -> Byteio.Writer.u8 w 2

let read_role r =
  match Byteio.Reader.u8 r with
  | 0 -> Controller.Sender
  | 1 -> Controller.Receiver
  | 2 -> Controller.Both
  | _ -> raise Byteio.Reader.Corrupt

let write_op w op =
  match op with
  | Add_group { group; members } ->
      Byteio.Writer.u8 w 0;
      Byteio.Writer.int w group;
      Byteio.Writer.list w
        (fun w (h, role) ->
          Byteio.Writer.int w h;
          write_role w role)
        members
  | Remove_group { group } ->
      Byteio.Writer.u8 w 1;
      Byteio.Writer.int w group
  | Join { group; host; role } ->
      Byteio.Writer.u8 w 2;
      Byteio.Writer.int w group;
      Byteio.Writer.int w host;
      write_role w role
  | Leave { group; host } ->
      Byteio.Writer.u8 w 3;
      Byteio.Writer.int w group;
      Byteio.Writer.int w host
  | Fail_spine s ->
      Byteio.Writer.u8 w 4;
      Byteio.Writer.int w s
  | Recover_spine s ->
      Byteio.Writer.u8 w 5;
      Byteio.Writer.int w s
  | Fail_core c ->
      Byteio.Writer.u8 w 6;
      Byteio.Writer.int w c
  | Recover_core c ->
      Byteio.Writer.u8 w 7;
      Byteio.Writer.int w c
  | Fail_link { leaf; plane } ->
      Byteio.Writer.u8 w 8;
      Byteio.Writer.int w leaf;
      Byteio.Writer.int w plane
  | Recover_link { leaf; plane } ->
      Byteio.Writer.u8 w 9;
      Byteio.Writer.int w leaf;
      Byteio.Writer.int w plane

let read_op ~topo r =
  let check = Byteio.Reader.check in
  let group rd =
    let g = Byteio.Reader.int rd in
    check (g >= 0);
    g
  in
  let host rd =
    let h = Byteio.Reader.int rd in
    check (0 <= h && h < Topology.num_hosts topo);
    h
  in
  let spine rd =
    let s = Byteio.Reader.int rd in
    check (0 <= s && s < Topology.num_spines topo);
    s
  in
  let core rd =
    let c = Byteio.Reader.int rd in
    check (0 <= c && c < max 1 (Topology.num_cores topo));
    c
  in
  let link rd =
    let leaf = Byteio.Reader.int rd in
    check (0 <= leaf && leaf < Topology.num_leaves topo);
    let plane = Byteio.Reader.int rd in
    check (0 <= plane && plane < topo.Topology.spines_per_pod);
    (leaf, plane)
  in
  match Byteio.Reader.u8 r with
  | 0 ->
      let g = group r in
      let members =
        Byteio.Reader.list r (fun rd ->
            let h = host rd in
            let role = read_role rd in
            (h, role))
      in
      Add_group { group = g; members }
  | 1 -> Remove_group { group = group r }
  | 2 ->
      let g = group r in
      let h = host r in
      let role = read_role r in
      Join { group = g; host = h; role }
  | 3 ->
      let g = group r in
      let h = host r in
      Leave { group = g; host = h }
  | 4 -> Fail_spine (spine r)
  | 5 -> Recover_spine (spine r)
  | 6 -> Fail_core (core r)
  | 7 -> Recover_core (core r)
  | 8 ->
      let leaf, plane = link r in
      Fail_link { leaf; plane }
  | 9 ->
      let leaf, plane = link r in
      Recover_link { leaf; plane }
  | _ -> raise Byteio.Reader.Corrupt

let write_entry w e =
  write_op w e.e_op;
  Byteio.Writer.option w (fun w -> Byteio.Writer.list w Byteio.Writer.int) e.e_pods

let read_entry ~topo r =
  let e_op = read_op ~topo r in
  let e_pods =
    Byteio.Reader.option r (fun rd ->
        Byteio.Reader.list rd (fun rd ->
            let p = Byteio.Reader.int rd in
            Byteio.Reader.check (0 <= p && p < topo.Topology.pods);
            p))
  in
  { e_op; e_pods }

let pp_op ppf = function
  | Add_group { group; members } ->
      Format.fprintf ppf "add_group %d (%d members)" group (List.length members)
  | Remove_group { group } -> Format.fprintf ppf "remove_group %d" group
  | Join { group; host; _ } -> Format.fprintf ppf "join %d host %d" group host
  | Leave { group; host } -> Format.fprintf ppf "leave %d host %d" group host
  | Fail_spine s -> Format.fprintf ppf "fail_spine %d" s
  | Recover_spine s -> Format.fprintf ppf "recover_spine %d" s
  | Fail_core c -> Format.fprintf ppf "fail_core %d" c
  | Recover_core c -> Format.fprintf ppf "recover_core %d" c
  | Fail_link { leaf; plane } -> Format.fprintf ppf "fail_link %d.%d" leaf plane
  | Recover_link { leaf; plane } ->
      Format.fprintf ppf "recover_link %d.%d" leaf plane
