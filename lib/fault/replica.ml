module Obs = Elmo_obs.Obs

type t = {
  fabric_hooks : Controller.fabric_hooks option;
  snapshot_every : int;
  mutable ctrl : Controller.t;
  journal : Journal.t;
  mutable snap : Controller.snapshot;
  mutable snap_at : int;  (* journal position the snapshot covers *)
  mutable wire : Wire.t option;
  mutable epoch : int;  (* fencing epoch stamped on appended records *)
}

let checkpoint t =
  t.snap <- Controller.snapshot t.ctrl;
  t.snap_at <- Journal.length t.journal;
  (match t.wire with
  | Some w -> Wire.append_snapshot w ~epoch:t.epoch t.snap
  | None -> ());
  Obs.incr "replica.checkpoints"

let create ?(snapshot_every = 64) ?fabric_hooks ?(incremental = true)
    ?(durable = false) ?observer topo params =
  let ctrl = Controller.create ?fabric_hooks ~incremental topo params in
  let snap = Controller.snapshot ctrl in
  let wire =
    if not durable then None
    else begin
      (* Genesis snapshot: the wire is self-contained from byte 0 — a log
         that loses every later snapshot still recovers from here. *)
      let w = Wire.create () in
      Wire.append_snapshot w ~epoch:0 snap;
      Some w
    end
  in
  {
    fabric_hooks;
    snapshot_every;
    ctrl;
    journal = Journal.create ?observer ();
    snap;
    snap_at = 0;
    wire;
    epoch = 0;
  }

let controller t = t.ctrl
let journal t = t.journal
let wire t = t.wire
let epoch t = t.epoch

let set_epoch t e =
  if e < t.epoch then invalid_arg "Replica.set_epoch: epoch regression";
  t.epoch <- e

(* The pods an op can touch, computed against the {e pre-op} controller
   state. Group ops are tagged with the pods of every member host (senders
   included: sender-side upstream state and failure overrides live in the
   sender's pod); spine and link events belong to the pod that owns the
   switch, since only flows with a member in that pod traverse it; core
   events are global — any cross-pod group may route through the core. *)
let pods_of_op t op =
  let topo = Controller.topology t.ctrl in
  let pod_of_host h = Topology.pod_of_host topo h in
  let member_pods group =
    match Controller.members t.ctrl ~group with
    | ms -> List.map (fun (h, _) -> pod_of_host h) ms
    | exception Not_found -> []
  in
  match op with
  | Journal.Add_group { members; _ } ->
      Some (List.sort_uniq Int.compare (List.map (fun (h, _) -> pod_of_host h) members))
  | Journal.Remove_group { group } ->
      Some (List.sort_uniq Int.compare (member_pods group))
  | Journal.Join { group; host; _ } | Journal.Leave { group; host } ->
      Some (List.sort_uniq Int.compare (pod_of_host host :: member_pods group))
  | Journal.Fail_spine s | Journal.Recover_spine s ->
      Some [ s / topo.Topology.spines_per_pod ]
  | Journal.Fail_link { leaf; _ } | Journal.Recover_link { leaf; _ } ->
      Some [ Topology.pod_of_leaf topo leaf ]
  | Journal.Fail_core _ | Journal.Recover_core _ -> None

let apply t op =
  let pods = pods_of_op t op in
  Journal.append ?pods t.journal op;
  (* Write-ahead: the op record is durable before execution, so a crash
     mid-execute replays it rather than losing it. *)
  (match t.wire with
  | Some w -> Wire.append_op w ~epoch:t.epoch { Journal.e_op = op; e_pods = pods }
  | None -> ());
  Journal.apply t.ctrl op;
  if Journal.length t.journal - t.snap_at >= t.snapshot_every then
    checkpoint t

let recovered t =
  Obs.with_span "replica.recover" (fun () ->
      let ctrl = Controller.restore ?fabric_hooks:t.fabric_hooks t.snap in
      let suffix = Journal.suffix t.journal ~from:t.snap_at in
      List.iter (Journal.apply ctrl) suffix;
      Obs.observe "replica.replayed_ops" (float_of_int (List.length suffix));
      ctrl)

(* Shard-scoped recovery: replay only the suffix ops that can touch
   [pod]'s shard — its transitive component. Connectivity must be
   transitive because group ops chain: a join's tag shares pods with the
   preceding membership ops of the same group, so any op affecting a
   component group pulls in the whole chain that built that group's
   state. Global (untagged) ops always replay. For every group whose
   members stay inside the component, the recovered controller is
   bit-identical to a full {!recovered} — skipped ops touch only disjoint
   pods, which the per-pod commit confinement keeps invisible to the
   component (global counters and out-of-component groups may differ). *)
let recover_shard t ~pod =
  Obs.with_span "replica.recover_shard" ~attrs:[ ("pod", Obs.Int pod) ]
  @@ fun () ->
  let ctrl = Controller.restore ?fabric_hooks:t.fabric_hooks t.snap in
  let topo = Controller.topology ctrl in
  let suffix = Journal.suffix_entries t.journal ~from:t.snap_at in
  let in_comp = Array.make topo.Topology.pods false in
  in_comp.(pod) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        match e.Journal.e_pods with
        | None -> ()
        | Some ps ->
            if List.exists (fun p -> in_comp.(p)) ps then
              List.iter
                (fun p ->
                  if not in_comp.(p) then begin
                    in_comp.(p) <- true;
                    changed := true
                  end)
                ps)
      suffix
  done;
  let relevant e =
    match e.Journal.e_pods with
    | None -> true
    | Some ps -> List.exists (fun p -> in_comp.(p)) ps
  in
  let replayed = ref 0 in
  List.iter
    (fun e ->
      if relevant e then begin
        incr replayed;
        Journal.apply ctrl e.Journal.e_op
      end)
    suffix;
  Obs.observe "replica.shard_replayed_ops" (float_of_int !replayed);
  Obs.observe "replica.shard_skipped_ops"
    (float_of_int (List.length suffix - !replayed));
  ctrl

let crash t = t.ctrl <- recovered t

let installed_config t = Controller.installed_config t.ctrl

let checkpoint_config t = Controller.installed_config_of_snapshot t.snap

let of_wire ?(snapshot_every = 64) ?fabric_hooks ?observer ?epoch
    (l : Wire.loaded) =
  match l.Wire.l_snapshot with
  | None -> Error "wire log has no recoverable snapshot"
  | Some snap -> (
      let epoch = match epoch with Some e -> e | None -> l.Wire.l_epoch in
      if epoch < l.Wire.l_epoch then
        Error
          (Printf.sprintf "epoch %d regresses below the log's epoch %d" epoch
             l.Wire.l_epoch)
      else
        match
          Obs.with_span "replica.of_wire" @@ fun () ->
          let ctrl = Controller.restore ?fabric_hooks snap in
          let journal = Journal.create ?observer () in
          (* Re-append the suffix through the journal so the observer (the
             flight recorder) sees every replayed op, then execute it. *)
          List.iter
            (fun e ->
              Journal.append ?pods:e.Journal.e_pods journal e.Journal.e_op;
              Journal.apply ctrl e.Journal.e_op)
            l.Wire.l_suffix;
          Obs.observe "replica.replayed_ops"
            (float_of_int (List.length l.Wire.l_suffix));
          (* Seed a fresh wire with the post-replay state: the new log is
             self-contained and the old (possibly corrupt) bytes are never
             appended to. *)
          let snap = Controller.snapshot ctrl in
          let w = Wire.create () in
          Wire.append_snapshot w ~epoch snap;
          {
            fabric_hooks;
            snapshot_every;
            ctrl;
            journal;
            snap;
            snap_at = Journal.length journal;
            wire = Some w;
            epoch;
          }
        with
        | t -> Ok t
        | exception exn ->
            (* Replay executes controller entry points over decoded — but
               adversarial — state; any failure is a recovery failure, not
               a crash of the supervisor. *)
            Error
              (Printf.sprintf "replay failed: %s" (Printexc.to_string exn)))
