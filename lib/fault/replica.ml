module Obs = Elmo_obs.Obs

type t = {
  fabric_hooks : Controller.fabric_hooks option;
  snapshot_every : int;
  mutable ctrl : Controller.t;
  journal : Journal.t;
  mutable snap : Controller.snapshot;
  mutable snap_at : int;  (* journal position the snapshot covers *)
}

let checkpoint t =
  t.snap <- Controller.snapshot t.ctrl;
  t.snap_at <- Journal.length t.journal;
  Obs.incr "replica.checkpoints"

let create ?(snapshot_every = 64) ?fabric_hooks ?(incremental = true)
    ?observer topo params =
  let ctrl = Controller.create ?fabric_hooks ~incremental topo params in
  {
    fabric_hooks;
    snapshot_every;
    ctrl;
    journal = Journal.create ?observer ();
    snap = Controller.snapshot ctrl;
    snap_at = 0;
  }

let controller t = t.ctrl
let journal t = t.journal

(* The pods an op can touch, computed against the {e pre-op} controller
   state. Group ops are tagged with the pods of every member host (senders
   included: sender-side upstream state and failure overrides live in the
   sender's pod); spine and link events belong to the pod that owns the
   switch, since only flows with a member in that pod traverse it; core
   events are global — any cross-pod group may route through the core. *)
let pods_of_op t op =
  let topo = Controller.topology t.ctrl in
  let pod_of_host h = Topology.pod_of_host topo h in
  let member_pods group =
    match Controller.members t.ctrl ~group with
    | ms -> List.map (fun (h, _) -> pod_of_host h) ms
    | exception Not_found -> []
  in
  match op with
  | Journal.Add_group { members; _ } ->
      Some (List.sort_uniq Int.compare (List.map (fun (h, _) -> pod_of_host h) members))
  | Journal.Remove_group { group } ->
      Some (List.sort_uniq Int.compare (member_pods group))
  | Journal.Join { group; host; _ } | Journal.Leave { group; host } ->
      Some (List.sort_uniq Int.compare (pod_of_host host :: member_pods group))
  | Journal.Fail_spine s | Journal.Recover_spine s ->
      Some [ s / topo.Topology.spines_per_pod ]
  | Journal.Fail_link { leaf; _ } | Journal.Recover_link { leaf; _ } ->
      Some [ Topology.pod_of_leaf topo leaf ]
  | Journal.Fail_core _ | Journal.Recover_core _ -> None

let apply t op =
  Journal.append ?pods:(pods_of_op t op) t.journal op;
  Journal.apply t.ctrl op;
  if Journal.length t.journal - t.snap_at >= t.snapshot_every then
    checkpoint t

let recovered t =
  Obs.with_span "replica.recover" (fun () ->
      let ctrl = Controller.restore ?fabric_hooks:t.fabric_hooks t.snap in
      let suffix = Journal.suffix t.journal ~from:t.snap_at in
      List.iter (Journal.apply ctrl) suffix;
      Obs.observe "replica.replayed_ops" (float_of_int (List.length suffix));
      ctrl)

(* Shard-scoped recovery: replay only the suffix ops that can touch
   [pod]'s shard — its transitive component. Connectivity must be
   transitive because group ops chain: a join's tag shares pods with the
   preceding membership ops of the same group, so any op affecting a
   component group pulls in the whole chain that built that group's
   state. Global (untagged) ops always replay. For every group whose
   members stay inside the component, the recovered controller is
   bit-identical to a full {!recovered} — skipped ops touch only disjoint
   pods, which the per-pod commit confinement keeps invisible to the
   component (global counters and out-of-component groups may differ). *)
let recover_shard t ~pod =
  Obs.with_span "replica.recover_shard" ~attrs:[ ("pod", Obs.Int pod) ]
  @@ fun () ->
  let ctrl = Controller.restore ?fabric_hooks:t.fabric_hooks t.snap in
  let topo = Controller.topology ctrl in
  let suffix = Journal.suffix_entries t.journal ~from:t.snap_at in
  let in_comp = Array.make topo.Topology.pods false in
  in_comp.(pod) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        match e.Journal.e_pods with
        | None -> ()
        | Some ps ->
            if List.exists (fun p -> in_comp.(p)) ps then
              List.iter
                (fun p ->
                  if not in_comp.(p) then begin
                    in_comp.(p) <- true;
                    changed := true
                  end)
                ps)
      suffix
  done;
  let relevant e =
    match e.Journal.e_pods with
    | None -> true
    | Some ps -> List.exists (fun p -> in_comp.(p)) ps
  in
  let replayed = ref 0 in
  List.iter
    (fun e ->
      if relevant e then begin
        incr replayed;
        Journal.apply ctrl e.Journal.e_op
      end)
    suffix;
  Obs.observe "replica.shard_replayed_ops" (float_of_int !replayed);
  Obs.observe "replica.shard_skipped_ops"
    (float_of_int (List.length suffix - !replayed));
  ctrl

let crash t = t.ctrl <- recovered t

let installed_config t = Controller.installed_config t.ctrl

let checkpoint_config t = Controller.installed_config_of_snapshot t.snap
