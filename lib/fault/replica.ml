type t = {
  fabric_hooks : Controller.fabric_hooks option;
  snapshot_every : int;
  mutable ctrl : Controller.t;
  journal : Journal.t;
  mutable snap : Controller.snapshot;
  mutable snap_at : int;  (* journal position the snapshot covers *)
}

let checkpoint t =
  t.snap <- Controller.snapshot t.ctrl;
  t.snap_at <- Journal.length t.journal;
  Elmo_obs.Obs.incr "replica.checkpoints"

let create ?(snapshot_every = 64) ?fabric_hooks ?(incremental = true) topo
    params =
  let ctrl = Controller.create ?fabric_hooks ~incremental topo params in
  {
    fabric_hooks;
    snapshot_every;
    ctrl;
    journal = Journal.create ();
    snap = Controller.snapshot ctrl;
    snap_at = 0;
  }

let controller t = t.ctrl
let journal t = t.journal

let apply t op =
  Journal.append t.journal op;
  Journal.apply t.ctrl op;
  if Journal.length t.journal - t.snap_at >= t.snapshot_every then
    checkpoint t

let recovered t =
  Elmo_obs.Obs.with_span "replica.recover" (fun () ->
      let ctrl = Controller.restore ?fabric_hooks:t.fabric_hooks t.snap in
      let suffix = Journal.suffix t.journal ~from:t.snap_at in
      List.iter (Journal.apply ctrl) suffix;
      Elmo_obs.Obs.observe "replica.replayed_ops"
        (float_of_int (List.length suffix));
      ctrl)

let crash t = t.ctrl <- recovered t

let installed_config t = Controller.installed_config t.ctrl

let checkpoint_config t = Controller.installed_config_of_snapshot t.snap
